//! Fault injection: degraded fabrics and time-scheduled fault events.
//!
//! Datacenter links brown out (lossy optics, unbalanced LAGs, partial
//! switch failures) far more often than they fail cleanly — and real
//! incidents are *dynamic*: capacity sags mid-run, links die, and both
//! recover while jobs are in flight. Two layers model this:
//!
//! * **Static degradation** — [`DegradedFabric`] wraps any [`Fabric`]
//!   and scales selected links' capacities by per-link factors frozen at
//!   construction, for steady-state brown-out experiments.
//! * **Scheduled faults** — a [`FaultSchedule`] of timed [`FaultEvent`]s
//!   delivered through the simulator event loop
//!   ([`crate::runtime::Simulation::try_run_with_faults`]). The engine
//!   maintains a [`FaultOverlay`] of live capacity factors and dead
//!   links; on a hard [`FaultEvent::FailLink`] it reroutes affected
//!   flows via ECMP re-salting (preserving bytes already delivered) and
//!   parks flows with no surviving path until the matching
//!   [`FaultEvent::RecoverLink`]. [`MutableFabric`] exposes the same
//!   overlay as a standalone [`Fabric`] for tests and tools.
//!
//! Degradations never touch routing (ECMP stays oblivious, exactly like
//! real unequal-capacity incidents); only hard failures do.

use crate::topology::{Fabric, LinkId, PathArena, PathRef};
use crate::SimError;
use gurita_model::HostId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A fabric with per-link capacity degradation factors.
///
/// # Example
///
/// ```
/// use gurita_sim::faults::DegradedFabric;
/// use gurita_sim::topology::{BigSwitch, Fabric, LinkId};
/// let base = BigSwitch::new(4, 100.0);
/// let faulty = DegradedFabric::new(base).with_degraded_link(LinkId(0), 0.25);
/// assert_eq!(faulty.link_capacity(LinkId(0)), 25.0);
/// assert_eq!(faulty.link_capacity(LinkId(1)), 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct DegradedFabric<F> {
    inner: F,
    factors: HashMap<usize, f64>,
}

impl<F: Fabric> DegradedFabric<F> {
    /// Wraps a fabric with no degradations.
    pub fn new(inner: F) -> Self {
        Self {
            inner,
            factors: HashMap::new(),
        }
    }

    /// Degrades one link to `factor` of its capacity.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1` (a zero-capacity link would stall
    /// every flow routed over it forever; model hard failures with a
    /// [`FaultSchedule`] instead) and the link exists. Use
    /// [`DegradedFabric::try_with_degraded_link`] for a fallible variant.
    pub fn with_degraded_link(self, link: LinkId, factor: f64) -> Self {
        self.try_with_degraded_link(link, factor)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`DegradedFabric::with_degraded_link`].
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFault`] if `factor` is outside `(0, 1]` or the
    /// link does not exist.
    pub fn try_with_degraded_link(mut self, link: LinkId, factor: f64) -> Result<Self, SimError> {
        validate_factor(factor)?;
        if link.index() >= self.inner.num_links() {
            return Err(SimError::InvalidFault {
                reason: format!(
                    "link {} out of range (fabric has {} links)",
                    link.index(),
                    self.inner.num_links()
                ),
            });
        }
        self.factors.insert(link.index(), factor);
        Ok(self)
    }

    /// Degrades every link of `host`'s up/down pair (NIC brown-out) on
    /// fabrics following the convention that link `h` is host `h`'s
    /// uplink and link `num_hosts + h` its downlink (both provided
    /// fabrics do).
    ///
    /// # Panics
    ///
    /// Panics on an invalid factor or host. Use
    /// [`DegradedFabric::try_with_degraded_host`] for a fallible variant.
    pub fn with_degraded_host(self, host: HostId, factor: f64) -> Self {
        self.try_with_degraded_host(host, factor)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`DegradedFabric::with_degraded_host`].
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFault`] if `factor` is outside `(0, 1]` or the
    /// host does not exist.
    pub fn try_with_degraded_host(self, host: HostId, factor: f64) -> Result<Self, SimError> {
        let n = self.inner.num_hosts();
        if host.index() >= n {
            return Err(SimError::InvalidFault {
                reason: format!("host {host} out of range (fabric has {n} hosts)"),
            });
        }
        self.try_with_degraded_link(LinkId(host.index()), factor)?
            .try_with_degraded_link(LinkId(n + host.index()), factor)
    }

    /// Number of degraded links.
    pub fn num_degraded(&self) -> usize {
        self.factors.len()
    }

    /// Borrows the wrapped fabric.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

impl<F: Fabric> Fabric for DegradedFabric<F> {
    fn num_hosts(&self) -> usize {
        self.inner.num_hosts()
    }

    fn num_links(&self) -> usize {
        self.inner.num_links()
    }

    fn link_capacity(&self, l: LinkId) -> f64 {
        let base = self.inner.link_capacity(l);
        match self.factors.get(&l.index()) {
            Some(&f) => base * f,
            None => base,
        }
    }

    fn path(&self, src: HostId, dst: HostId, salt: u64) -> Result<Vec<LinkId>, SimError> {
        self.inner.path(src, dst, salt)
    }

    fn path_ref(
        &self,
        src: HostId,
        dst: HostId,
        salt: u64,
        arena: &mut PathArena,
    ) -> Result<PathRef, SimError> {
        self.inner.path_ref(src, dst, salt, arena)
    }
}

fn validate_factor(factor: f64) -> Result<(), SimError> {
    if factor > 0.0 && factor <= 1.0 {
        Ok(())
    } else {
        Err(SimError::InvalidFault {
            reason: format!("degradation factor must be in (0, 1], got {factor}"),
        })
    }
}

/// One fault, applied instantaneously when its scheduled time is
/// reached.
///
/// Link-level events address a single directed link; host-level events
/// address both links of a host's up/down NIC pair. `Degrade`/`Brownout`
/// scale capacity (soft fault: routing untouched); `Fail` removes the
/// link entirely (hard fault: flows reroute or park).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Scale one link to `factor` of its base capacity.
    DegradeLink {
        /// The affected link.
        link: LinkId,
        /// Remaining fraction of capacity, in `(0, 1]`.
        factor: f64,
    },
    /// Remove any degradation from one link.
    RestoreLink {
        /// The affected link.
        link: LinkId,
    },
    /// Hard-fail one link: capacity drops to zero and flows routed over
    /// it are rerouted (fresh ECMP salts) or parked.
    FailLink {
        /// The affected link.
        link: LinkId,
    },
    /// Bring a hard-failed link back; parked flows resume.
    RecoverLink {
        /// The affected link.
        link: LinkId,
    },
    /// Scale both links of a host's NIC pair to `factor` (brown-out).
    BrownoutHost {
        /// The affected host.
        host: HostId,
        /// Remaining fraction of capacity, in `(0, 1]`.
        factor: f64,
    },
    /// Remove any degradation from a host's NIC pair.
    RestoreHost {
        /// The affected host.
        host: HostId,
    },
    /// Hard-fail both links of a host's NIC pair.
    FailHost {
        /// The affected host.
        host: HostId,
    },
    /// Bring a hard-failed host back; parked flows resume.
    RecoverHost {
        /// The affected host.
        host: HostId,
    },
}

impl FaultEvent {
    /// The directed links this event addresses on a fabric with
    /// `num_hosts` hosts (host events expand to the up/down pair).
    pub fn links(&self, num_hosts: usize) -> Vec<LinkId> {
        match *self {
            FaultEvent::DegradeLink { link, .. }
            | FaultEvent::RestoreLink { link }
            | FaultEvent::FailLink { link }
            | FaultEvent::RecoverLink { link } => vec![link],
            FaultEvent::BrownoutHost { host, .. }
            | FaultEvent::RestoreHost { host }
            | FaultEvent::FailHost { host }
            | FaultEvent::RecoverHost { host } => {
                vec![LinkId(host.index()), LinkId(num_hosts + host.index())]
            }
        }
    }

    /// Whether this event kills links (hard failure).
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            FaultEvent::FailLink { .. } | FaultEvent::FailHost { .. }
        )
    }

    /// Whether this event revives previously hard-failed links.
    pub fn is_recovery(&self) -> bool {
        matches!(
            self,
            FaultEvent::RecoverLink { .. } | FaultEvent::RecoverHost { .. }
        )
    }

    fn validate(&self, fabric: &impl Fabric) -> Result<(), SimError> {
        if let FaultEvent::DegradeLink { factor, .. } | FaultEvent::BrownoutHost { factor, .. } =
            self
        {
            validate_factor(*factor)?;
        }
        match *self {
            FaultEvent::BrownoutHost { host, .. }
            | FaultEvent::RestoreHost { host }
            | FaultEvent::FailHost { host }
            | FaultEvent::RecoverHost { host }
                if host.index() >= fabric.num_hosts() =>
            {
                return Err(SimError::InvalidFault {
                    reason: format!(
                        "host {host} out of range (fabric has {} hosts)",
                        fabric.num_hosts()
                    ),
                });
            }
            _ => {}
        }
        for l in self.links(fabric.num_hosts()) {
            if l.index() >= fabric.num_links() {
                return Err(SimError::InvalidFault {
                    reason: format!(
                        "link {} out of range (fabric has {} links)",
                        l.index(),
                        fabric.num_links()
                    ),
                });
            }
        }
        Ok(())
    }
}

/// A [`FaultEvent`] with its injection time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedFault {
    /// Simulation time at which the fault applies, in seconds.
    pub at: f64,
    /// The fault.
    pub event: FaultEvent,
}

/// A time-ordered script of faults injected into a run.
///
/// Build one with [`FaultSchedule::push`] (any insertion order; the
/// engine sequences events by time) and pass it to
/// [`crate::runtime::Simulation::try_run_with_faults`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<TimedFault>,
}

impl FaultSchedule {
    /// An empty schedule (equivalent to a healthy run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `event` at time `at`.
    pub fn push(&mut self, at: f64, event: FaultEvent) -> &mut Self {
        self.events.push(TimedFault { at, event });
        self
    }

    /// The scheduled faults, in insertion order.
    pub fn events(&self) -> &[TimedFault] {
        &self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Builds a schedule from pre-collected events, validating every
    /// entry against `fabric` at construction instead of at run start:
    /// out-of-range host/link ids, bad factors, and non-finite times are
    /// rejected exactly as [`FaultSchedule::validate`] rejects them, and
    /// — unlike `push`, which accepts any insertion order — the
    /// timestamps must additionally be non-decreasing, so a generator
    /// emitting a time-ordered script finds ordering bugs here rather
    /// than as silently resequenced faults mid-run.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFault`] describing the first offending entry
    /// or the first backwards timestamp.
    pub fn try_new(events: Vec<TimedFault>, fabric: &impl Fabric) -> Result<Self, SimError> {
        let schedule = Self { events };
        schedule.validate(fabric)?;
        for pair in schedule.events.windows(2) {
            if pair[1].at < pair[0].at {
                return Err(SimError::InvalidFault {
                    reason: format!(
                        "fault times must be non-decreasing, got {} after {}",
                        pair[1].at, pair[0].at
                    ),
                });
            }
        }
        Ok(schedule)
    }

    /// Checks every entry against `fabric`: links/hosts must exist,
    /// factors must lie in `(0, 1]`, times must be finite and
    /// non-negative.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFault`] describing the first offending entry.
    pub fn validate(&self, fabric: &impl Fabric) -> Result<(), SimError> {
        for tf in &self.events {
            if !tf.at.is_finite() || tf.at < 0.0 {
                return Err(SimError::InvalidFault {
                    reason: format!("fault time must be finite and >= 0, got {}", tf.at),
                });
            }
            tf.event.validate(fabric)?;
        }
        Ok(())
    }
}

/// Live capacity state accumulated from applied [`FaultEvent`]s:
/// per-link degradation factors plus the set of hard-failed links.
///
/// The runtime owns one per faulted run; [`MutableFabric`] packages one
/// with a base fabric for standalone use.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultOverlay {
    factors: HashMap<usize, f64>,
    dead: HashSet<usize>,
}

impl FaultOverlay {
    /// An overlay with no faults applied.
    pub fn new() -> Self {
        Self::default()
    }

    /// Multiplier on the base capacity of link `l`: `0.0` when the link
    /// is hard-failed, its degradation factor when browned out, `1.0`
    /// when healthy. The empty-overlay fast path matters: the engine
    /// queries every touched link on every rate recomputation, and
    /// healthy runs should not pay a hash lookup per query.
    pub fn scale(&self, l: LinkId) -> f64 {
        if self.dead.is_empty() && self.factors.is_empty() {
            return 1.0;
        }
        if self.dead.contains(&l.index()) {
            0.0
        } else {
            self.factors.get(&l.index()).copied().unwrap_or(1.0)
        }
    }

    /// Whether link `l` is hard-failed.
    pub fn is_dead(&self, l: LinkId) -> bool {
        !self.dead.is_empty() && self.dead.contains(&l.index())
    }

    /// Whether any link is hard-failed.
    pub fn has_failures(&self) -> bool {
        !self.dead.is_empty()
    }

    /// Whether `path` crosses a hard-failed link.
    pub fn path_is_dead(&self, path: &[LinkId]) -> bool {
        path.iter().any(|l| self.is_dead(*l))
    }

    /// Number of links currently degraded (browned out, not dead).
    pub fn num_degraded(&self) -> usize {
        self.factors.len()
    }

    /// Number of links currently hard-failed — read by telemetry epoch
    /// samples alongside [`FaultOverlay::num_degraded`].
    pub fn num_dead(&self) -> usize {
        self.dead.len()
    }

    /// Applies `event` (validated elsewhere) on a fabric with
    /// `num_hosts` hosts. Returns exactly which links changed, so the
    /// caller can invalidate only the rates the event actually touched
    /// (the runtime re-waterfills just the affected flow↔link
    /// component).
    pub fn apply(&mut self, event: &FaultEvent, num_hosts: usize) -> FaultImpact {
        let links = event.links(num_hosts);
        let mut impact = FaultImpact::default();
        for l in links {
            match event {
                FaultEvent::DegradeLink { factor, .. }
                | FaultEvent::BrownoutHost { factor, .. } => {
                    if self.factors.insert(l.index(), *factor) != Some(*factor) {
                        impact.rescaled.push(l);
                    }
                }
                FaultEvent::RestoreLink { .. } | FaultEvent::RestoreHost { .. } => {
                    if self.factors.remove(&l.index()).is_some() {
                        impact.rescaled.push(l);
                    }
                }
                FaultEvent::FailLink { .. } | FaultEvent::FailHost { .. } => {
                    if self.dead.insert(l.index()) {
                        impact.newly_dead.push(l);
                    }
                }
                FaultEvent::RecoverLink { .. } | FaultEvent::RecoverHost { .. } => {
                    if self.dead.remove(&l.index()) {
                        impact.revived.push(l);
                    }
                }
            }
        }
        impact
    }
}

/// Exactly which links one applied [`FaultEvent`] changed. Idempotent
/// re-applications (failing a dead link, restoring a healthy one,
/// re-degrading to the same factor) report nothing, so rate
/// invalidation stays proportional to real change.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultImpact {
    /// Links that transitioned live → hard-failed.
    pub newly_dead: Vec<LinkId>,
    /// Links that transitioned hard-failed → live.
    pub revived: Vec<LinkId>,
    /// Links whose capacity scale changed without a liveness change
    /// (degradations applied or lifted).
    pub rescaled: Vec<LinkId>,
}

impl FaultImpact {
    /// Whether the event changed nothing at all.
    pub fn is_empty(&self) -> bool {
        self.newly_dead.is_empty() && self.revived.is_empty() && self.rescaled.is_empty()
    }

    /// All changed links, in `newly_dead`, `revived`, `rescaled` order.
    pub fn changed_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.newly_dead
            .iter()
            .chain(self.revived.iter())
            .chain(self.rescaled.iter())
            .copied()
    }
}

/// A fabric whose capacities change as faults are applied: a base
/// [`Fabric`] composed with a [`FaultOverlay`].
///
/// Hard-failed links report zero capacity; routing is delegated
/// unchanged (callers decide how to react to dead links, exactly as the
/// runtime does via rerouting/parking).
///
/// # Example
///
/// ```
/// use gurita_sim::faults::{FaultEvent, MutableFabric};
/// use gurita_sim::topology::{BigSwitch, Fabric, LinkId};
/// let mut fab = MutableFabric::new(BigSwitch::new(4, 100.0));
/// fab.apply(&FaultEvent::DegradeLink { link: LinkId(1), factor: 0.5 });
/// assert_eq!(fab.link_capacity(LinkId(1)), 50.0);
/// fab.apply(&FaultEvent::FailLink { link: LinkId(1) });
/// assert_eq!(fab.link_capacity(LinkId(1)), 0.0);
/// fab.apply(&FaultEvent::RecoverLink { link: LinkId(1) });
/// assert_eq!(fab.link_capacity(LinkId(1)), 50.0); // degradation persists
/// ```
#[derive(Debug, Clone)]
pub struct MutableFabric<F> {
    inner: F,
    overlay: FaultOverlay,
}

impl<F: Fabric> MutableFabric<F> {
    /// Wraps a healthy fabric.
    pub fn new(inner: F) -> Self {
        Self {
            inner,
            overlay: FaultOverlay::new(),
        }
    }

    /// Applies one fault event, mutating capacities in place. Returns
    /// exactly which links changed as a [`FaultImpact`].
    pub fn apply(&mut self, event: &FaultEvent) -> FaultImpact {
        let n = self.inner.num_hosts();
        self.overlay.apply(event, n)
    }

    /// The live fault state.
    pub fn overlay(&self) -> &FaultOverlay {
        &self.overlay
    }

    /// Borrows the wrapped fabric.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

impl<F: Fabric> Fabric for MutableFabric<F> {
    fn num_hosts(&self) -> usize {
        self.inner.num_hosts()
    }

    fn num_links(&self) -> usize {
        self.inner.num_links()
    }

    fn link_capacity(&self, l: LinkId) -> f64 {
        self.inner.link_capacity(l) * self.overlay.scale(l)
    }

    fn path(&self, src: HostId, dst: HostId, salt: u64) -> Result<Vec<LinkId>, SimError> {
        self.inner.path(src, dst, salt)
    }

    fn path_ref(
        &self,
        src: HostId,
        dst: HostId,
        salt: u64,
        arena: &mut PathArena,
    ) -> Result<PathRef, SimError> {
        self.inner.path_ref(src, dst, salt, arena)
    }
}

/// Salt for re-route `attempt` of a flow with natural salt `base`:
/// attempt 0 is the flow's own path, later attempts perturb the salt
/// with a splitmix64-style odd multiplier. The sequence is part of the
/// simulator's determinism contract — both re-salt helpers and any A/B
/// representation must walk it identically.
fn resalt(base: u64, attempt: u64) -> u64 {
    if attempt == 0 {
        base
    } else {
        base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// How many fresh salts [`resalt_live_path`] tries after the natural one.
const RESALT_ATTEMPTS: u64 = 32;

/// Looks for an ECMP path between `src` and `dst` avoiding every
/// hard-failed link in `overlay`: the flow's natural salt (`base_salt`)
/// first, then fresh re-salts. Returns `None` when all candidates are
/// dead (e.g. the host's own NIC failed, or the fabric is
/// salt-oblivious). The surviving path is interned into `arena`.
pub fn resalt_live_path<F: Fabric + ?Sized>(
    fabric: &F,
    overlay: &FaultOverlay,
    arena: &mut PathArena,
    base_salt: u64,
    src: HostId,
    dst: HostId,
) -> Result<Option<PathRef>, SimError> {
    for attempt in 0..=RESALT_ATTEMPTS {
        let p = fabric.path_ref(src, dst, resalt(base_salt, attempt), arena)?;
        if !overlay.path_is_dead(arena.get(p)) {
            return Ok(Some(p));
        }
    }
    Ok(None)
}

/// Owned-path variant of [`resalt_live_path`], walking the exact same
/// salt sequence through [`Fabric::path`]. Exists so equivalence tests
/// can pin the two representations against each other.
pub fn resalt_live_path_vec<F: Fabric + ?Sized>(
    fabric: &F,
    overlay: &FaultOverlay,
    base_salt: u64,
    src: HostId,
    dst: HostId,
) -> Result<Option<Vec<LinkId>>, SimError> {
    for attempt in 0..=RESALT_ATTEMPTS {
        let p = fabric.path(src, dst, resalt(base_salt, attempt))?;
        if !overlay.path_is_dead(&p) {
            return Ok(Some(p));
        }
    }
    Ok(None)
}

/// Minimal splitmix64 stream used for the control-fault coin flips.
///
/// Self-contained so the fault model does not depend on the vendored
/// `rand` crate (which the `sim` crate deliberately avoids): same seed →
/// same stream on every platform, which is what makes fault-armed runs
/// replayable. The additive constant is the same odd multiplier the
/// private re-route `resalt` sequence uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A scheduled crash of one host's scheduling agent.
///
/// While crashed the agent neither reports local observations nor
/// applies delivered priority tables; its host keeps scheduling on the
/// last table the agent applied before dying. If `restart_after` is set
/// the agent comes back that many seconds later with empty state (it
/// re-syncs through the ordinary delivery protocol).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentCrash {
    /// Host whose agent crashes.
    pub host: HostId,
    /// Crash time (simulation seconds).
    pub at: f64,
    /// Seconds after the crash at which the agent restarts; `None`
    /// means the agent stays down for the rest of the run.
    pub restart_after: Option<f64>,
}

/// A window during which the coordinator is unreachable.
///
/// While partitioned the coordinator neither collects reports nor emits
/// new tables, and acks sent to it are lost; deliveries already in
/// flight toward hosts still land. Hosts ride out the window on their
/// last-applied tables and fall back to local decisions once those
/// tables exceed the staleness bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionWindow {
    /// Window start (simulation seconds).
    pub start: f64,
    /// Window length in seconds; must be positive.
    pub duration: f64,
}

/// One expanded entry of a [`ControlFaults`] timeline — the concrete
/// state transitions the engine replays as events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlFaultEvent {
    /// The named host's agent goes down.
    AgentCrash {
        /// Host whose agent crashes.
        host: HostId,
    },
    /// The named host's agent comes back with empty state.
    AgentRestart {
        /// Host whose agent restarts.
        host: HostId,
    },
    /// The coordinator becomes unreachable.
    PartitionStart,
    /// The coordinator becomes reachable again.
    PartitionEnd,
}

/// Control-plane fault profile: lossy coordinator↔host channels plus
/// scheduled agent crashes and coordinator partitions.
///
/// All randomness comes from `seed` through [`SplitMix64`], so the same
/// profile over the same workload replays bit-for-bit. A profile where
/// [`ControlFaults::is_null`] holds arms nothing: the control plane
/// stays on its exact legacy delivery path and results are unchanged.
///
/// Not serializable on purpose: the profile rides inside
/// [`crate::runtime::SimConfig`] (itself non-serde), and the default
/// `staleness_bound` of `f64::INFINITY` has no JSON representation.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlFaults {
    /// Probability that any single control message (table delivery or
    /// ack) is dropped, in `[0, 1]`.
    pub drop_prob: f64,
    /// Probability that a table delivery is duplicated, in `[0, 1]`.
    pub duplicate_prob: f64,
    /// Probability that a table delivery is delayed by `reorder_delay`
    /// (arriving after messages sent later), in `[0, 1]`.
    pub reorder_prob: f64,
    /// Extra delay applied to reordered deliveries, seconds.
    pub reorder_delay: f64,
    /// Seed of the fault coin-flip stream.
    pub seed: u64,
    /// Seconds the coordinator waits for an ack before retransmitting.
    pub ack_timeout: f64,
    /// Multiplier applied to the retry interval after each attempt;
    /// must be ≥ 1.
    pub backoff_factor: f64,
    /// Upper bound on the retry interval, seconds.
    pub max_backoff: f64,
    /// Retransmissions attempted before the coordinator gives up on a
    /// (host, table) pair.
    pub max_retries: u32,
    /// Seconds a host tolerates its applied table lagging the
    /// coordinator's latest decision before falling back to its own
    /// local (`Gurita@local`-style) decision. The default of
    /// `f64::INFINITY` never degrades.
    pub staleness_bound: f64,
    /// Scheduled agent crashes.
    pub crashes: Vec<AgentCrash>,
    /// Scheduled coordinator partition windows.
    pub partitions: Vec<PartitionWindow>,
}

impl Default for ControlFaults {
    fn default() -> Self {
        Self {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            reorder_delay: 0.0,
            seed: 0,
            ack_timeout: 10e-3,
            backoff_factor: 2.0,
            max_backoff: 80e-3,
            max_retries: 5,
            staleness_bound: f64::INFINITY,
            crashes: Vec::new(),
            partitions: Vec::new(),
        }
    }
}

impl ControlFaults {
    /// True when the profile can never perturb a run: all probabilities
    /// zero and no crash or partition scheduled. The control plane
    /// treats a null profile exactly like no profile at all, which is
    /// what pins the zero-fault bit-for-bit identity.
    pub fn is_null(&self) -> bool {
        self.drop_prob == 0.0
            && self.duplicate_prob == 0.0
            && self.reorder_prob == 0.0
            && self.crashes.is_empty()
            && self.partitions.is_empty()
    }

    /// Checks the profile against a fabric of `num_hosts` hosts.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFault`] naming the first offending field:
    /// probabilities outside `[0, 1]`, non-finite or negative times,
    /// `backoff_factor < 1`, non-positive `ack_timeout`/`max_backoff`/
    /// `staleness_bound`, crash hosts out of range, or non-positive
    /// partition durations.
    pub fn validate(&self, num_hosts: usize) -> Result<(), SimError> {
        let prob = |name: &str, p: f64| -> Result<(), SimError> {
            if !(0.0..=1.0).contains(&p) {
                return Err(SimError::InvalidFault {
                    reason: format!("{name} must be in [0, 1], got {p}"),
                });
            }
            Ok(())
        };
        prob("drop_prob", self.drop_prob)?;
        prob("duplicate_prob", self.duplicate_prob)?;
        prob("reorder_prob", self.reorder_prob)?;
        if !self.reorder_delay.is_finite() || self.reorder_delay < 0.0 {
            return Err(SimError::InvalidFault {
                reason: format!(
                    "reorder_delay must be finite and >= 0, got {}",
                    self.reorder_delay
                ),
            });
        }
        if !self.ack_timeout.is_finite() || self.ack_timeout <= 0.0 {
            return Err(SimError::InvalidFault {
                reason: format!(
                    "ack_timeout must be finite and > 0, got {}",
                    self.ack_timeout
                ),
            });
        }
        if !self.backoff_factor.is_finite() || self.backoff_factor < 1.0 {
            return Err(SimError::InvalidFault {
                reason: format!(
                    "backoff_factor must be finite and >= 1, got {}",
                    self.backoff_factor
                ),
            });
        }
        if !self.max_backoff.is_finite() || self.max_backoff <= 0.0 {
            return Err(SimError::InvalidFault {
                reason: format!(
                    "max_backoff must be finite and > 0, got {}",
                    self.max_backoff
                ),
            });
        }
        if self.staleness_bound.is_nan() || self.staleness_bound <= 0.0 {
            return Err(SimError::InvalidFault {
                reason: format!(
                    "staleness_bound must be > 0 (infinity allowed), got {}",
                    self.staleness_bound
                ),
            });
        }
        for crash in &self.crashes {
            if crash.host.index() >= num_hosts {
                return Err(SimError::InvalidFault {
                    reason: format!(
                        "crash host {} out of range for {num_hosts} hosts",
                        crash.host.index()
                    ),
                });
            }
            if !crash.at.is_finite() || crash.at < 0.0 {
                return Err(SimError::InvalidFault {
                    reason: format!("crash time must be finite and >= 0, got {}", crash.at),
                });
            }
            if let Some(ra) = crash.restart_after {
                if !ra.is_finite() || ra <= 0.0 {
                    return Err(SimError::InvalidFault {
                        reason: format!("restart_after must be finite and > 0, got {ra}"),
                    });
                }
            }
        }
        for window in &self.partitions {
            if !window.start.is_finite() || window.start < 0.0 {
                return Err(SimError::InvalidFault {
                    reason: format!(
                        "partition start must be finite and >= 0, got {}",
                        window.start
                    ),
                });
            }
            if !window.duration.is_finite() || window.duration <= 0.0 {
                return Err(SimError::InvalidFault {
                    reason: format!(
                        "partition duration must be finite and > 0, got {}",
                        window.duration
                    ),
                });
            }
        }
        Ok(())
    }

    /// Expands crashes and partitions into a time-sorted event list the
    /// engine schedules up front. The sort is stable, so same-time
    /// events replay in declaration order.
    pub fn timeline(&self) -> Vec<(f64, ControlFaultEvent)> {
        let mut events = Vec::new();
        for crash in &self.crashes {
            events.push((crash.at, ControlFaultEvent::AgentCrash { host: crash.host }));
            if let Some(ra) = crash.restart_after {
                events.push((
                    crash.at + ra,
                    ControlFaultEvent::AgentRestart { host: crash.host },
                ));
            }
        }
        for window in &self.partitions {
            events.push((window.start, ControlFaultEvent::PartitionStart));
            events.push((
                window.start + window.duration,
                ControlFaultEvent::PartitionEnd,
            ));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0));
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{SimConfig, Simulation};
    use crate::sched::FifoScheduler;
    use crate::topology::BigSwitch;
    use gurita_model::{units::MB, CoflowSpec, FlowSpec, JobDag, JobSpec};

    #[test]
    fn degradation_scales_capacity_only_where_applied() {
        let f = DegradedFabric::new(BigSwitch::new(4, 8.0))
            .with_degraded_link(LinkId(2), 0.5)
            .with_degraded_host(HostId(0), 0.25);
        assert_eq!(f.num_degraded(), 3);
        assert_eq!(f.link_capacity(LinkId(2)), 4.0);
        assert_eq!(f.link_capacity(LinkId(0)), 2.0);
        assert_eq!(f.link_capacity(LinkId(4)), 2.0);
        assert_eq!(f.link_capacity(LinkId(3)), 8.0);
        assert_eq!(f.num_hosts(), 4);
    }

    #[test]
    fn routing_is_unchanged() {
        let base = BigSwitch::new(4, 8.0);
        let f = DegradedFabric::new(base.clone()).with_degraded_link(LinkId(1), 0.1);
        assert_eq!(
            f.path(HostId(1), HostId(3), 9).unwrap(),
            base.path(HostId(1), HostId(3), 9).unwrap()
        );
    }

    #[test]
    fn flows_slow_down_through_degraded_links() {
        let job = JobSpec::new(
            0,
            0.0,
            vec![CoflowSpec::new(vec![FlowSpec::new(
                HostId(0),
                HostId(1),
                4.0 * MB,
            )])],
            JobDag::chain(1).unwrap(),
        )
        .unwrap();
        let healthy = {
            let mut sim = Simulation::new(BigSwitch::new(4, MB), SimConfig::default());
            sim.run(vec![job.clone()], &mut FifoScheduler::new(1))
        };
        let degraded = {
            let fabric =
                DegradedFabric::new(BigSwitch::new(4, MB)).with_degraded_host(HostId(1), 0.5);
            let mut sim = Simulation::new(fabric, SimConfig::default());
            sim.run(vec![job], &mut FifoScheduler::new(1))
        };
        assert!((healthy.jobs[0].jct - 4.0).abs() < 1e-6);
        assert!((degraded.jobs[0].jct - 8.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn rejects_zero_factor() {
        let _ = DegradedFabric::new(BigSwitch::new(2, 1.0)).with_degraded_link(LinkId(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unknown_link() {
        let _ = DegradedFabric::new(BigSwitch::new(2, 1.0)).with_degraded_link(LinkId(99), 0.5);
    }

    #[test]
    fn try_builders_report_instead_of_panicking() {
        let base = || DegradedFabric::new(BigSwitch::new(2, 1.0));
        let err = base().try_with_degraded_link(LinkId(0), 0.0).unwrap_err();
        assert!(matches!(err, SimError::InvalidFault { .. }), "{err}");
        let err = base().try_with_degraded_link(LinkId(99), 0.5).unwrap_err();
        assert!(err.to_string().contains("out of range"));
        let err = base().try_with_degraded_host(HostId(7), 0.5).unwrap_err();
        assert!(err.to_string().contains("host"));
        let ok = base().try_with_degraded_host(HostId(1), 0.5).unwrap();
        assert_eq!(ok.num_degraded(), 2);
    }

    #[test]
    fn fault_event_links_expand_hosts() {
        let e = FaultEvent::BrownoutHost {
            host: HostId(3),
            factor: 0.5,
        };
        assert_eq!(e.links(8), vec![LinkId(3), LinkId(11)]);
        let e = FaultEvent::FailLink { link: LinkId(5) };
        assert_eq!(e.links(8), vec![LinkId(5)]);
        assert!(e.is_failure() && !e.is_recovery());
        assert!(FaultEvent::RecoverHost { host: HostId(0) }.is_recovery());
    }

    #[test]
    fn schedule_validation_catches_bad_entries() {
        let fab = BigSwitch::new(4, 1.0);
        let mut s = FaultSchedule::new();
        s.push(
            1.0,
            FaultEvent::DegradeLink {
                link: LinkId(0),
                factor: 0.5,
            },
        );
        assert!(s.validate(&fab).is_ok());
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());

        let mut bad_factor = FaultSchedule::new();
        bad_factor.push(
            0.0,
            FaultEvent::BrownoutHost {
                host: HostId(0),
                factor: 1.5,
            },
        );
        assert!(matches!(
            bad_factor.validate(&fab),
            Err(SimError::InvalidFault { .. })
        ));

        let mut bad_link = FaultSchedule::new();
        bad_link.push(0.0, FaultEvent::FailLink { link: LinkId(400) });
        assert!(bad_link.validate(&fab).is_err());

        let mut bad_host = FaultSchedule::new();
        bad_host.push(0.0, FaultEvent::RestoreHost { host: HostId(9) });
        assert!(bad_host.validate(&fab).is_err());

        let mut bad_time = FaultSchedule::new();
        bad_time.push(-1.0, FaultEvent::RestoreLink { link: LinkId(0) });
        assert!(bad_time.validate(&fab).is_err());
    }

    #[test]
    fn try_new_rejects_bad_ids_and_backwards_time() {
        let fab = BigSwitch::new(4, 1.0);
        let ok = vec![
            TimedFault {
                at: 1.0,
                event: FaultEvent::FailLink { link: LinkId(0) },
            },
            TimedFault {
                at: 2.0,
                event: FaultEvent::RecoverLink { link: LinkId(0) },
            },
        ];
        assert_eq!(FaultSchedule::try_new(ok.clone(), &fab).unwrap().len(), 2);

        let mut out_of_range = ok.clone();
        out_of_range[1].event = FaultEvent::FailHost { host: HostId(99) };
        assert!(matches!(
            FaultSchedule::try_new(out_of_range, &fab),
            Err(SimError::InvalidFault { .. })
        ));

        let mut backwards = ok;
        backwards[1].at = 0.5;
        let err = FaultSchedule::try_new(backwards, &fab).unwrap_err();
        assert!(
            err.to_string().contains("non-decreasing"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn control_faults_default_is_null_and_valid() {
        let cf = ControlFaults::default();
        assert!(cf.is_null());
        assert!(cf.validate(8).is_ok());
        assert!(cf.timeline().is_empty());
        // Probabilities alone arm the profile.
        let armed = ControlFaults {
            drop_prob: 0.1,
            ..ControlFaults::default()
        };
        assert!(!armed.is_null());
    }

    #[test]
    fn control_faults_validation_catches_bad_fields() {
        let bad = |f: ControlFaults| {
            assert!(
                matches!(f.validate(8), Err(SimError::InvalidFault { .. })),
                "expected rejection of {f:?}"
            );
        };
        bad(ControlFaults {
            drop_prob: 1.5,
            ..ControlFaults::default()
        });
        bad(ControlFaults {
            duplicate_prob: -0.1,
            ..ControlFaults::default()
        });
        bad(ControlFaults {
            reorder_delay: f64::NAN,
            ..ControlFaults::default()
        });
        bad(ControlFaults {
            ack_timeout: 0.0,
            ..ControlFaults::default()
        });
        bad(ControlFaults {
            backoff_factor: 0.5,
            ..ControlFaults::default()
        });
        bad(ControlFaults {
            max_backoff: -1.0,
            ..ControlFaults::default()
        });
        bad(ControlFaults {
            staleness_bound: 0.0,
            ..ControlFaults::default()
        });
        bad(ControlFaults {
            crashes: vec![AgentCrash {
                host: HostId(8),
                at: 0.0,
                restart_after: None,
            }],
            ..ControlFaults::default()
        });
        bad(ControlFaults {
            crashes: vec![AgentCrash {
                host: HostId(0),
                at: 1.0,
                restart_after: Some(0.0),
            }],
            ..ControlFaults::default()
        });
        bad(ControlFaults {
            partitions: vec![PartitionWindow {
                start: 1.0,
                duration: 0.0,
            }],
            ..ControlFaults::default()
        });
        // Infinite staleness bound is the "never degrade" default.
        assert!(ControlFaults::default().validate(8).is_ok());
    }

    #[test]
    fn control_fault_timeline_expands_sorted() {
        let cf = ControlFaults {
            crashes: vec![AgentCrash {
                host: HostId(2),
                at: 3.0,
                restart_after: Some(1.0),
            }],
            partitions: vec![PartitionWindow {
                start: 0.5,
                duration: 3.0,
            }],
            ..ControlFaults::default()
        };
        assert_eq!(
            cf.timeline(),
            vec![
                (0.5, ControlFaultEvent::PartitionStart),
                (3.0, ControlFaultEvent::AgentCrash { host: HostId(2) }),
                (3.5, ControlFaultEvent::PartitionEnd),
                (4.0, ControlFaultEvent::AgentRestart { host: HostId(2) }),
            ]
        );
    }

    #[test]
    fn splitmix_is_deterministic_and_in_range() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
        }
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn overlay_tracks_death_and_revival() {
        let mut o = FaultOverlay::new();
        let impact = o.apply(&FaultEvent::FailHost { host: HostId(1) }, 4);
        assert_eq!(impact.newly_dead, vec![LinkId(1), LinkId(5)]);
        assert!(o.is_dead(LinkId(1)) && o.is_dead(LinkId(5)));
        assert!(o.has_failures());
        assert_eq!(o.scale(LinkId(1)), 0.0);
        assert!(o.path_is_dead(&[LinkId(0), LinkId(5)]));
        // Double-fail is idempotent.
        let impact = o.apply(&FaultEvent::FailLink { link: LinkId(1) }, 4);
        assert!(impact.is_empty());
        let impact = o.apply(&FaultEvent::RecoverHost { host: HostId(1) }, 4);
        assert_eq!(impact.revived, vec![LinkId(1), LinkId(5)]);
        assert!(!o.has_failures());
        assert_eq!(o.scale(LinkId(1)), 1.0);
    }

    #[test]
    fn overlay_reports_rescaled_links_exactly() {
        let mut o = FaultOverlay::new();
        let degrade = FaultEvent::DegradeLink {
            link: LinkId(2),
            factor: 0.5,
        };
        let impact = o.apply(&degrade, 4);
        assert_eq!(impact.rescaled, vec![LinkId(2)]);
        assert!(impact.newly_dead.is_empty() && impact.revived.is_empty());
        assert_eq!(impact.changed_links().collect::<Vec<_>>(), vec![LinkId(2)]);
        // Re-degrading to the same factor changes nothing.
        assert!(o.apply(&degrade, 4).is_empty());
        // A different factor is a change again.
        let impact = o.apply(
            &FaultEvent::DegradeLink {
                link: LinkId(2),
                factor: 0.25,
            },
            4,
        );
        assert_eq!(impact.rescaled, vec![LinkId(2)]);
        // Restoring an undegraded link reports nothing; restoring the
        // degraded one reports it.
        assert!(o
            .apply(&FaultEvent::RestoreLink { link: LinkId(3) }, 4)
            .is_empty());
        let impact = o.apply(&FaultEvent::RestoreLink { link: LinkId(2) }, 4);
        assert_eq!(impact.rescaled, vec![LinkId(2)]);
        // Host brownout touches the up/down pair.
        let impact = o.apply(
            &FaultEvent::BrownoutHost {
                host: HostId(0),
                factor: 0.75,
            },
            4,
        );
        assert_eq!(impact.rescaled, vec![LinkId(0), LinkId(4)]);
    }

    #[test]
    fn mutable_fabric_layers_degradation_under_failure() {
        let mut fab = MutableFabric::new(BigSwitch::new(4, 100.0));
        fab.apply(&FaultEvent::BrownoutHost {
            host: HostId(0),
            factor: 0.25,
        });
        assert_eq!(fab.link_capacity(LinkId(0)), 25.0);
        fab.apply(&FaultEvent::FailLink { link: LinkId(0) });
        assert_eq!(fab.link_capacity(LinkId(0)), 0.0);
        assert_eq!(fab.link_capacity(LinkId(4)), 25.0);
        fab.apply(&FaultEvent::RecoverLink { link: LinkId(0) });
        assert_eq!(fab.link_capacity(LinkId(0)), 25.0);
        fab.apply(&FaultEvent::RestoreHost { host: HostId(0) });
        assert_eq!(fab.link_capacity(LinkId(0)), 100.0);
        assert_eq!(fab.overlay().num_degraded(), 0);
        assert_eq!(fab.num_hosts(), 4);
        assert_eq!(fab.num_links(), 8);
        assert!(fab
            .path(HostId(0), HostId(1), 3)
            .unwrap()
            .contains(&LinkId(0)));
        assert_eq!(fab.inner().num_hosts(), 4);
    }

    #[test]
    fn schedule_serializes_round_trip() {
        let mut s = FaultSchedule::new();
        s.push(
            0.5,
            FaultEvent::DegradeLink {
                link: LinkId(3),
                factor: 0.25,
            },
        )
        .push(2.0, FaultEvent::FailHost { host: HostId(1) });
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
