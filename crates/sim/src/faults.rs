//! Fault injection: degraded fabrics.
//!
//! Datacenter links brown out (lossy optics, unbalanced LAGs, partial
//! switch failures) far more often than they fail cleanly. A
//! [`DegradedFabric`] wraps any [`Fabric`] and scales selected links'
//! capacities by per-link factors, letting tests and experiments measure
//! how schedulers behave when parts of the network slow down — without
//! touching routing (ECMP stays oblivious, exactly like real unequal-
//! capacity incidents).

use crate::topology::{Fabric, LinkId};
use crate::SimError;
use gurita_model::HostId;
use std::collections::HashMap;

/// A fabric with per-link capacity degradation factors.
///
/// # Example
///
/// ```
/// use gurita_sim::faults::DegradedFabric;
/// use gurita_sim::topology::{BigSwitch, Fabric, LinkId};
/// let base = BigSwitch::new(4, 100.0);
/// let faulty = DegradedFabric::new(base).with_degraded_link(LinkId(0), 0.25);
/// assert_eq!(faulty.link_capacity(LinkId(0)), 25.0);
/// assert_eq!(faulty.link_capacity(LinkId(1)), 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct DegradedFabric<F> {
    inner: F,
    factors: HashMap<usize, f64>,
}

impl<F: Fabric> DegradedFabric<F> {
    /// Wraps a fabric with no degradations.
    pub fn new(inner: F) -> Self {
        Self {
            inner,
            factors: HashMap::new(),
        }
    }

    /// Degrades one link to `factor` of its capacity.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1` (a zero-capacity link would stall
    /// every flow routed over it forever; model hard failures by
    /// rerouting at the workload level instead) and the link exists.
    pub fn with_degraded_link(mut self, link: LinkId, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "degradation factor must be in (0, 1], got {factor}"
        );
        assert!(
            link.index() < self.inner.num_links(),
            "link {link:?} out of range"
        );
        self.factors.insert(link.index(), factor);
        self
    }

    /// Degrades every link of `host`'s up/down pair (NIC brown-out) on
    /// fabrics following the convention that link `h` is host `h`'s
    /// uplink and link `num_hosts + h` its downlink (both provided
    /// fabrics do).
    ///
    /// # Panics
    ///
    /// Panics on an invalid factor or host (see
    /// [`DegradedFabric::with_degraded_link`]).
    pub fn with_degraded_host(self, host: HostId, factor: f64) -> Self {
        let n = self.inner.num_hosts();
        assert!(host.index() < n, "host {host} out of range");
        self.with_degraded_link(LinkId(host.index()), factor)
            .with_degraded_link(LinkId(n + host.index()), factor)
    }

    /// Number of degraded links.
    pub fn num_degraded(&self) -> usize {
        self.factors.len()
    }

    /// Borrows the wrapped fabric.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

impl<F: Fabric> Fabric for DegradedFabric<F> {
    fn num_hosts(&self) -> usize {
        self.inner.num_hosts()
    }

    fn num_links(&self) -> usize {
        self.inner.num_links()
    }

    fn link_capacity(&self, l: LinkId) -> f64 {
        let base = self.inner.link_capacity(l);
        match self.factors.get(&l.index()) {
            Some(&f) => base * f,
            None => base,
        }
    }

    fn path(&self, src: HostId, dst: HostId, salt: u64) -> Result<Vec<LinkId>, SimError> {
        self.inner.path(src, dst, salt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{SimConfig, Simulation};
    use crate::sched::FifoScheduler;
    use crate::topology::BigSwitch;
    use gurita_model::{units::MB, CoflowSpec, FlowSpec, JobDag, JobSpec};

    #[test]
    fn degradation_scales_capacity_only_where_applied() {
        let f = DegradedFabric::new(BigSwitch::new(4, 8.0))
            .with_degraded_link(LinkId(2), 0.5)
            .with_degraded_host(HostId(0), 0.25);
        assert_eq!(f.num_degraded(), 3);
        assert_eq!(f.link_capacity(LinkId(2)), 4.0);
        assert_eq!(f.link_capacity(LinkId(0)), 2.0);
        assert_eq!(f.link_capacity(LinkId(4)), 2.0);
        assert_eq!(f.link_capacity(LinkId(3)), 8.0);
        assert_eq!(f.num_hosts(), 4);
    }

    #[test]
    fn routing_is_unchanged() {
        let base = BigSwitch::new(4, 8.0);
        let f = DegradedFabric::new(base.clone()).with_degraded_link(LinkId(1), 0.1);
        assert_eq!(
            f.path(HostId(1), HostId(3), 9).unwrap(),
            base.path(HostId(1), HostId(3), 9).unwrap()
        );
    }

    #[test]
    fn flows_slow_down_through_degraded_links() {
        let job = JobSpec::new(
            0,
            0.0,
            vec![CoflowSpec::new(vec![FlowSpec::new(
                HostId(0),
                HostId(1),
                4.0 * MB,
            )])],
            JobDag::chain(1).unwrap(),
        )
        .unwrap();
        let healthy = {
            let mut sim = Simulation::new(BigSwitch::new(4, MB), SimConfig::default());
            sim.run(vec![job.clone()], &mut FifoScheduler::new(1))
        };
        let degraded = {
            let fabric = DegradedFabric::new(BigSwitch::new(4, MB))
                .with_degraded_host(HostId(1), 0.5);
            let mut sim = Simulation::new(fabric, SimConfig::default());
            sim.run(vec![job], &mut FifoScheduler::new(1))
        };
        assert!((healthy.jobs[0].jct - 4.0).abs() < 1e-6);
        assert!((degraded.jobs[0].jct - 8.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn rejects_zero_factor() {
        let _ = DegradedFabric::new(BigSwitch::new(2, 1.0)).with_degraded_link(LinkId(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unknown_link() {
        let _ = DegradedFabric::new(BigSwitch::new(2, 1.0)).with_degraded_link(LinkId(99), 0.5);
    }
}
