//! Simulation result records.

use crate::faults::FaultEvent;
use gurita_model::{CoflowId, JobId, SizeCategory};
use serde::{Deserialize, Serialize};

/// Completion record of one coflow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoflowResult {
    /// The coflow's identifier.
    pub id: CoflowId,
    /// The owning job.
    pub job: JobId,
    /// DAG vertex index within the job.
    pub dag_vertex: usize,
    /// Time the coflow was activated (all children completed).
    pub activated_at: f64,
    /// Time the last flow of the coflow completed.
    pub completed_at: f64,
    /// Total bytes the coflow transferred.
    pub bytes: f64,
    /// Total time the coflow spent active at zero aggregate rate (every
    /// open flow parked or rated zero) — the paper's §V starvation
    /// observable. Maintained unconditionally (not gated by telemetry).
    #[serde(default)]
    pub starved_total: f64,
    /// Longest contiguous zero-rate interval while active.
    #[serde(default)]
    pub starved_max: f64,
}

impl CoflowResult {
    /// Coflow completion time (CCT): activation to completion.
    pub fn cct(&self) -> f64 {
        self.completed_at - self.activated_at
    }
}

/// Completion record of one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// The job's identifier.
    pub id: JobId,
    /// Arrival time.
    pub arrival: f64,
    /// Time the last root coflow completed.
    pub completed_at: f64,
    /// Job completion time (completion − arrival).
    pub jct: f64,
    /// Total bytes the job sent, used for Table 1 categorization.
    pub total_bytes: f64,
    /// Number of stages in the job.
    pub num_stages: usize,
    /// How many of this job's flows were rerouted around failed links.
    #[serde(default)]
    pub fault_reroutes: usize,
    /// How many of this job's flows were parked on failed links (each
    /// later resumed, or the run would not have drained).
    #[serde(default)]
    pub fault_parks: usize,
}

impl JobResult {
    /// The job's Table 1 size category.
    pub fn category(&self) -> SizeCategory {
        SizeCategory::of_bytes(self.total_bytes)
    }
}

/// One fault applied during a run and the engine's reaction to it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Simulation time at which the fault was applied.
    pub at: f64,
    /// The fault that was applied.
    pub event: FaultEvent,
    /// Flows moved to a fresh path when this fault hit (or when its
    /// recovery let a parked flow reroute).
    pub rerouted: usize,
    /// Flows left with no live path by this fault and parked.
    pub parked: usize,
    /// Parked flows that resumed because of this recovery.
    pub resumed: usize,
}

/// Control-plane resilience accounting for one run.
///
/// All counters stay zero unless the run armed a non-null
/// [`crate::faults::ControlFaults`] profile, so healthy results are
/// unchanged and legacy JSON (which lacks the field entirely) parses via
/// `serde(default)`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ControlResilience {
    /// Table deliveries transmitted (first sends and retransmissions).
    pub messages_sent: u64,
    /// Table deliveries lost to the channel's drop probability.
    pub messages_dropped: u64,
    /// Table deliveries the channel duplicated.
    pub messages_duplicated: u64,
    /// Deliveries a host rejected as stale or duplicate by sequence
    /// number.
    pub messages_deduped: u64,
    /// Retransmissions triggered by ack timeouts.
    pub messages_retried: u64,
    /// (host, table) pairs the coordinator gave up on after
    /// `max_retries` retransmissions.
    pub retries_abandoned: u64,
    /// Acks lost in flight (channel drop or coordinator partition).
    pub acks_lost: u64,
    /// Agent crash events applied.
    pub agent_crashes: u64,
    /// Agent restart events applied.
    pub agent_restarts: u64,
    /// Coordinator partition windows entered.
    pub partitions: u64,
    /// Worst lag (seconds) any host's applied table had behind the
    /// coordinator's latest decision.
    pub max_table_staleness: f64,
    /// Total host-seconds spent degraded to local-only scheduling.
    pub degraded_time: f64,
    /// Number of times any host entered the degraded state.
    pub degraded_entries: u64,
}

/// Result of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Name of the scheduler that produced this run.
    pub scheduler: String,
    /// Per-job completion records, in completion order.
    pub jobs: Vec<JobResult>,
    /// Per-coflow completion records, in completion order.
    pub coflows: Vec<CoflowResult>,
    /// Simulation time at which the last job completed.
    pub makespan: f64,
    /// Number of events processed (diagnostics).
    pub events: u64,
    /// Bytes carried per link over the whole run, sorted descending —
    /// populated only when `SimConfig::collect_link_stats` is set
    /// (identifies hot links; divide by capacity × makespan for mean
    /// utilization).
    #[serde(default)]
    pub link_bytes: Vec<(usize, f64)>,
    /// Timeline of faults applied during the run, with per-fault
    /// reroute/park/resume counts. Empty for healthy runs.
    #[serde(default)]
    pub faults: Vec<FaultRecord>,
    /// Total flow reroutes caused by hard link failures.
    #[serde(default)]
    pub flows_rerouted: usize,
    /// Total flows parked for lack of a live path.
    #[serde(default)]
    pub flows_parked: usize,
    /// Total parked flows resumed by recoveries.
    #[serde(default)]
    pub flows_resumed: usize,
    /// Distinct interned paths in the engine's path arena at end of run
    /// (diagnostics; see `gurita_sim::topology::PathArena`).
    #[serde(default)]
    pub path_arena_unique: usize,
    /// Total path-intern requests served over the run.
    #[serde(default)]
    pub path_arena_interns: u64,
    /// Fraction of intern requests answered from the arena cache
    /// (`1 - unique/interns`); 0 for runs with no interned paths.
    ///
    /// Scale-dependent: on small fabrics repeated host pairs collapse
    /// onto few ECMP routes and the rate is high, while at 48 pods the
    /// per-flow ECMP salt spreads (k/2)² = 576 routes per host pair and
    /// the rate is legitimately ~0 (measured diagnosis in DESIGN.md,
    /// "Scaling to 48 pods"). Prefer `path_arena_storage_bytes` for a
    /// gate metric that tracks arena growth meaningfully at scale.
    #[serde(default)]
    pub path_arena_hit_rate: f64,
    /// Resident bytes of interned path storage at end of run (links
    /// plus spans; see `gurita_sim::topology::PathArena::storage_bytes`).
    #[serde(default)]
    pub path_arena_storage_bytes: usize,
    /// Control-plane resilience counters; all zero unless the run armed
    /// a control-fault profile.
    #[serde(default)]
    pub control: ControlResilience,
    /// Jobs cancelled through the online admission API
    /// (`Engine::cancel_job`); always 0 for offline runs.
    #[serde(default)]
    pub jobs_cancelled: usize,
}

impl RunResult {
    /// Average job completion time across all jobs; 0 for an empty run.
    pub fn avg_jct(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            self.jobs.iter().map(|j| j.jct).sum::<f64>() / self.jobs.len() as f64
        }
    }

    /// Average coflow completion time across all coflows; 0 if none.
    pub fn avg_cct(&self) -> f64 {
        if self.coflows.is_empty() {
            0.0
        } else {
            self.coflows.iter().map(|c| c.cct()).sum::<f64>() / self.coflows.len() as f64
        }
    }

    /// Average JCT restricted to one size category; `None` when the
    /// category is empty.
    pub fn avg_jct_in(&self, cat: SizeCategory) -> Option<f64> {
        let v: Vec<f64> = self
            .jobs
            .iter()
            .filter(|j| j.category() == cat)
            .map(|j| j.jct)
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// The worst single contiguous starvation interval any coflow saw
    /// (seconds at zero aggregate rate while active); 0 for empty runs
    /// and for runs where every coflow always held some rate.
    pub fn max_starvation(&self) -> f64 {
        self.coflows
            .iter()
            .map(|c| c.starved_max)
            .fold(0.0, f64::max)
    }

    /// Total starved time summed over all coflows.
    pub fn total_starvation(&self) -> f64 {
        self.coflows.iter().map(|c| c.starved_total).sum()
    }

    /// The `p`-th percentile of JCT (`0.0 ..= 1.0`); `None` on empty runs.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn jct_percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0,1]");
        if self.jobs.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.jobs.iter().map(|j| j.jct).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("JCTs are finite"));
        let idx = ((v.len() - 1) as f64 * p).round() as usize;
        Some(v[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gurita_model::units::MB;

    fn job(id: usize, jct: f64, bytes: f64) -> JobResult {
        JobResult {
            id: JobId(id),
            arrival: 0.0,
            completed_at: jct,
            jct,
            total_bytes: bytes,
            num_stages: 1,
            fault_reroutes: 0,
            fault_parks: 0,
        }
    }

    #[test]
    fn averages() {
        let r = RunResult {
            scheduler: "x".into(),
            jobs: vec![job(0, 2.0, 10.0 * MB), job(1, 4.0, 200.0 * MB)],
            coflows: vec![],
            makespan: 4.0,
            ..RunResult::default()
        };
        assert_eq!(r.avg_jct(), 3.0);
        assert_eq!(r.avg_jct_in(SizeCategory::I), Some(2.0));
        assert_eq!(r.avg_jct_in(SizeCategory::II), Some(4.0));
        assert_eq!(r.avg_jct_in(SizeCategory::VII), None);
    }

    #[test]
    fn empty_run_is_benign() {
        let r = RunResult::default();
        assert_eq!(r.avg_jct(), 0.0);
        assert_eq!(r.avg_cct(), 0.0);
        assert_eq!(r.jct_percentile(0.5), None);
    }

    #[test]
    fn percentiles() {
        let r = RunResult {
            scheduler: "x".into(),
            jobs: (1..=100).map(|i| job(i, i as f64, MB)).collect(),
            coflows: vec![],
            makespan: 100.0,
            ..RunResult::default()
        };
        assert_eq!(r.jct_percentile(0.0), Some(1.0));
        assert_eq!(r.jct_percentile(1.0), Some(100.0));
        let median = r.jct_percentile(0.5).unwrap();
        assert!((49.0..=51.0).contains(&median));
    }

    #[test]
    fn cct_is_activation_relative() {
        let c = CoflowResult {
            id: CoflowId(0),
            job: JobId(0),
            dag_vertex: 0,
            activated_at: 3.0,
            completed_at: 7.5,
            bytes: MB,
            starved_total: 0.0,
            starved_max: 0.0,
        };
        assert_eq!(c.cct(), 4.5);
    }

    #[test]
    fn starvation_fields_survive_serde_and_default_when_absent() {
        let c = CoflowResult {
            id: CoflowId(1),
            job: JobId(0),
            dag_vertex: 2,
            activated_at: 1.0,
            completed_at: 9.0,
            bytes: MB,
            starved_total: 3.5,
            starved_max: 2.0,
        };
        let r = RunResult {
            scheduler: "x".into(),
            coflows: vec![c],
            ..RunResult::default()
        };
        let back: RunResult = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.max_starvation(), 2.0);
        assert_eq!(back.total_starvation(), 3.5);
        // Pre-telemetry coflow records (no starvation fields) still
        // parse: strip the new fields from the serialized form and
        // deserialize what a pre-PR-5 writer would have produced.
        let mut v = r.to_value();
        let serde::Value::Map(fields) = &mut v else {
            panic!("RunResult serializes as an object");
        };
        let (_, coflows) = fields
            .iter_mut()
            .find(|(k, _)| k == "coflows")
            .expect("coflows field");
        let serde::Value::Seq(coflows) = coflows else {
            panic!("coflows serializes as an array");
        };
        for c in coflows {
            let serde::Value::Map(cf) = c else {
                panic!("coflow serializes as an object");
            };
            cf.retain(|(k, _)| k != "starved_total" && k != "starved_max");
        }
        let old: RunResult = serde_json::from_str(&serde_json::to_string(&v).unwrap()).unwrap();
        assert_eq!(old.coflows[0].starved_total, 0.0);
        assert_eq!(old.coflows[0].starved_max, 0.0);
        assert_eq!(old.max_starvation(), 0.0);
    }

    #[test]
    fn fault_fields_survive_serde_and_default_when_absent() {
        use crate::topology::LinkId;
        let r = RunResult {
            scheduler: "x".into(),
            faults: vec![FaultRecord {
                at: 1.5,
                event: FaultEvent::FailLink { link: LinkId(2) },
                rerouted: 3,
                parked: 1,
                resumed: 0,
            }],
            flows_rerouted: 3,
            flows_parked: 1,
            ..RunResult::default()
        };
        let back: RunResult = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back, r);
        // Pre-fault-model JSON (no fault fields) still deserializes.
        let legacy = r#"{"scheduler":"y","jobs":[],"coflows":[],"makespan":0,"events":0}"#;
        let old: RunResult = serde_json::from_str(legacy).unwrap();
        assert!(old.faults.is_empty());
        assert_eq!(old.flows_parked, 0);
    }

    #[test]
    fn resilience_fields_survive_serde_and_default_when_absent() {
        let r = RunResult {
            scheduler: "x".into(),
            control: ControlResilience {
                messages_sent: 12,
                messages_dropped: 3,
                messages_retried: 2,
                max_table_staleness: 0.25,
                degraded_time: 1.5,
                degraded_entries: 1,
                ..ControlResilience::default()
            },
            ..RunResult::default()
        };
        let back: RunResult = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back, r);
        // Results written before the control-fault model (no `control`
        // field) still parse: strip the field and reparse.
        let mut v = r.to_value();
        let serde::Value::Map(fields) = &mut v else {
            panic!("RunResult serializes as an object");
        };
        fields.retain(|(k, _)| k != "control");
        let old: RunResult = serde_json::from_str(&serde_json::to_string(&v).unwrap()).unwrap();
        assert_eq!(old.control, ControlResilience::default());
    }
}
