//! Weighted max-min ("water-filling") bandwidth allocation.
//!
//! The simulator is a fluid model: at any instant every active flow
//! transmits at a rate determined by the network's service discipline.
//! Within a priority class, flows share capacity max-min fairly — the
//! standard flow-level approximation of many TCP flows in steady state
//! (the paper: "we implement a rate limiter that behaves like TCP").
//!
//! Two service disciplines are provided:
//!
//! * [`Discipline::StrictPriority`] — strict priority queuing (SPQ), the
//!   built-in commodity-switch feature Gurita and Stream use to enforce
//!   scheduling decisions: all capacity goes to the highest backlogged
//!   priority on each link; lower priorities receive leftovers only.
//! * [`Discipline::WeightedRoundRobin`] — Gurita's starvation mitigation:
//!   SPQ is *emulated* with WRR so that "lower priority traffic transmits
//!   at a much lower rate than higher priority traffic" instead of
//!   starving. On each link, backlogged queue `q` receives a `w_q`
//!   fraction of capacity, shared max-min fairly among its flows
//!   (work-conserving: idle queues' shares are redistributed).
//!
//! The allocator is a progressive water-filling over per-(flow, link)
//! weights with a lazy min-heap of bottleneck candidates. One pass over
//! `F` flows costs `O(F · |path| · log F)` heap work. A reusable
//! [`Allocator`] builds a *dense per-call remap*: every link the demand
//! set touches gets a compact index, and all per-link state (residual
//! capacity, weight sums, WRR counts) lives in arrays sized by the
//! touched-link count, not the fabric. On a 48-pod fat-tree (165,888
//! links) an incremental recompute touches a few hundred links, so the
//! scratch stays cache-resident instead of striding through
//! multi-megabyte fabric-sized arrays; only the remap table itself is
//! fabric-sized, and it is epoch-stamped so no `O(L)` clear happens per
//! call. After warm-up no call allocates. The runtime additionally
//! restricts recomputation to the affected flow↔link component after
//! most events, so per-event cost is `O(C · |path| · log C)` in the
//! component size `C`, not the global flow count (see DESIGN.md, "Hot
//! path & complexity").

use crate::topology::LinkId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A flow's bandwidth demand: the links it traverses and the priority
/// queue it currently transmits in.
#[derive(Debug, Clone)]
pub struct Demand<'a> {
    /// Directed links traversed, in order. An empty path means a
    /// host-local transfer: the allocator reports `f64::INFINITY`.
    pub path: &'a [LinkId],
    /// Priority queue index: 0 is the *highest* priority.
    pub queue: usize,
}

/// Demand accessor used by [`Allocator::allocate_into`].
///
/// Abstracting over the storage lets callers allocate from their own
/// flow tables (as the runtime does, avoiding a per-event `Vec<Demand>`
/// rebuild) while `&[Demand]` keeps working for tests and tools.
pub trait Demands {
    /// Number of demands.
    fn len(&self) -> usize;
    /// Whether there are no demands.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Links traversed by demand `i`, in order.
    fn path(&self, i: usize) -> &[LinkId];
    /// Priority queue of demand `i` (0 = highest).
    fn queue(&self, i: usize) -> usize;
}

impl Demands for [Demand<'_>] {
    fn len(&self) -> usize {
        <[Demand<'_>]>::len(self)
    }
    fn path(&self, i: usize) -> &[LinkId] {
        self[i].path
    }
    fn queue(&self, i: usize) -> usize {
        self[i].queue
    }
}

/// Service discipline applied at every link.
#[derive(Debug, Clone, PartialEq)]
pub enum Discipline {
    /// Strict priority queuing with `num_queues` classes.
    StrictPriority {
        /// Number of priority classes (queue indexes are `0..num_queues`).
        num_queues: usize,
    },
    /// Weighted round robin: queue `q` of every link is served in
    /// proportion to `weights[q]`. Weights must be positive; they are
    /// normalized internally.
    WeightedRoundRobin {
        /// Per-queue service weights (index 0 = highest priority queue).
        weights: Vec<f64>,
    },
}

impl Discipline {
    /// Number of queues this discipline serves.
    pub fn num_queues(&self) -> usize {
        match self {
            Discipline::StrictPriority { num_queues } => *num_queues,
            Discipline::WeightedRoundRobin { weights } => weights.len(),
        }
    }
}

const EPS: f64 = 1e-12;

/// Heap entry: candidate bottleneck rate for a flow (min-rate first).
///
/// Entries go stale when a link on the flow's path changes; since link
/// shares only ever increase as flows freeze, a stale entry can only
/// *under*estimate the flow's true candidate rate, so the pop-recheck-
/// repush loop in [`waterfill`] is sound.
#[derive(Debug)]
struct Candidate {
    rate: f64,
    flow: u32,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.rate == other.rate
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the min rate on top.
        // Candidate rates are non-negative and never NaN (positive
        // weights times clamped-non-negative shares), so `total_cmp` —
        // a branch-free integer comparison — yields exactly the numeric
        // order `partial_cmp` would. Deliberately NO tie-break on flow
        // index: exact rate ties are pervasive in max-min sharing and an
        // extra compare here costs ~10% of 48-pod serial throughput. The
        // serial-vs-parallel equality contract doesn't need one — both
        // modes issue bit-identical heap operation sequences per
        // component, and a heap is deterministic given its inputs.
        other.rate.total_cmp(&self.rate)
    }
}

/// Reusable water-filling scratch state sized for a fabric with a fixed
/// number of dense link ids.
///
/// Per-link state is *component-local*: each [`Allocator::allocate_into`]
/// call remaps the links its demand set touches onto compact indices
/// `0..T` and works in `T`-sized arrays, so the hot scratch fits in
/// cache even when the fabric has hundreds of thousands of links. Only
/// the remap table is fabric-sized, cleared lazily via epoch stamps.
///
/// Construct one per fabric with [`Allocator::new`] and call
/// [`Allocator::allocate_into`] repeatedly: after warm-up no call
/// allocates. The one-shot [`allocate`] helper wraps a temporary
/// instance for convenience.
#[derive(Debug)]
pub struct Allocator {
    num_links: usize,
    /// Monotone counter backing both the per-call and per-pass epochs.
    epoch: u64,
    call_epoch: u64,
    /// Global link id → dense per-call index, valid iff the stamp equals
    /// the current call epoch.
    remap: Vec<u32>,
    remap_epoch: Vec<u64>,
    /// Dense residual capacities, one per touched link; initialized from
    /// `capacity` when a link is first remapped and persisting across the
    /// priority passes of one call.
    resid: Vec<f64>,
    /// Dense per-pass weight sums (stamped with the pass epoch).
    sum_w: Vec<f64>,
    sumw_epoch: Vec<u64>,
    /// Cached per-link fair shares `resid / sum_w`, refreshed when a
    /// freeze changes a link; valid for links stamped in the current
    /// pass.
    share: Vec<f64>,
    /// Links first touched in the current pass (dense indices; scratch).
    pass_links: Vec<u32>,
    /// Demand paths translated to dense link indices: demand `i` owns
    /// `dense_paths[spans[i].0 .. spans[i].0 + spans[i].1]`.
    dense_paths: Vec<u32>,
    spans: Vec<(u32, u32)>,
    queues: Vec<u32>,
    /// WRR per-(queue, dense link) backlogged-flow counts, laid out as
    /// `queue * touched + link`. Kept all-zero between calls; only the
    /// slots in `used_slots` are written and re-zeroed, so a call costs
    /// O(slots actually backlogged), not O(queues × touched links).
    counts: Vec<f64>,
    used_slots: Vec<usize>,
    idx: Vec<u32>,
    heap: BinaryHeap<Candidate>,
    /// A demand is frozen in the current pass iff its stamp equals the
    /// pass epoch.
    frozen_epoch: Vec<u64>,
}

impl Allocator {
    /// Creates scratch state for link ids in `0..num_links`.
    pub fn new(num_links: usize) -> Self {
        Self {
            num_links,
            epoch: 0,
            call_epoch: 0,
            remap: vec![0; num_links],
            remap_epoch: vec![0; num_links],
            resid: Vec::new(),
            sum_w: Vec::new(),
            sumw_epoch: Vec::new(),
            share: Vec::new(),
            pass_links: Vec::new(),
            dense_paths: Vec::new(),
            spans: Vec::new(),
            queues: Vec::new(),
            counts: Vec::new(),
            used_slots: Vec::new(),
            idx: Vec::new(),
            heap: BinaryHeap::new(),
            frozen_epoch: Vec::new(),
        }
    }

    /// Number of dense link ids this allocator is sized for.
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Distinct links touched by the most recent
    /// [`Allocator::allocate_into`] call — the width of its dense remap.
    /// Free to read (the dense residual array retains that length
    /// between calls); 0 before the first call. Exposed for telemetry
    /// epoch samples.
    pub fn last_touched_links(&self) -> usize {
        self.resid.len()
    }

    /// Water-filling passes run by the most recent call: one per
    /// non-empty priority queue under SPQ, one total under WRR. Derived
    /// from the pass-epoch counter the allocator keeps anyway, so
    /// reading it costs nothing. 0 before the first call.
    pub fn last_waterfill_passes(&self) -> u64 {
        self.epoch - self.call_epoch
    }

    /// Computes per-demand rates into `rates` (one slot per demand, in
    /// order) under `discipline`, where link `l` has capacity
    /// `capacity(l)` bytes per second. Demands with an empty path get
    /// `f64::INFINITY` (they complete instantly in the fluid model).
    ///
    /// # Panics
    ///
    /// Panics if `rates.len() != demands.len()`, if a demand's queue
    /// index is `>= discipline.num_queues()`, if a path link's index is
    /// `>= self.num_links()`, or if a WRR weight is not positive and
    /// finite.
    pub fn allocate_into<D: Demands + ?Sized>(
        &mut self,
        demands: &D,
        capacity: impl Fn(LinkId) -> f64,
        discipline: &Discipline,
        rates: &mut [f64],
    ) {
        let n = demands.len();
        assert_eq!(rates.len(), n, "one rate slot per demand required");
        let nq = discipline.num_queues();
        rates.fill(f64::INFINITY);
        self.epoch += 1;
        self.call_epoch = self.epoch;
        if self.frozen_epoch.len() < n {
            self.frozen_epoch.resize(n, 0);
        }
        // Dense remap: assign compact indices to the links this demand
        // set actually touches and translate every path once up front
        // (validation is folded into this single traversal). Residual
        // capacity is seeded at first touch and persists across the
        // priority passes below.
        self.resid.clear();
        self.dense_paths.clear();
        self.spans.clear();
        self.queues.clear();
        for i in 0..n {
            let q = demands.queue(i);
            assert!(q < nq, "demand queue {q} out of range ({nq} queues)");
            let start = self.dense_paths.len() as u32;
            for l in demands.path(i) {
                let li = l.index();
                assert!(
                    li < self.num_links,
                    "link {} out of range ({} links)",
                    li,
                    self.num_links
                );
                if self.remap_epoch[li] != self.call_epoch {
                    self.remap[li] = self.resid.len() as u32;
                    self.remap_epoch[li] = self.call_epoch;
                    self.resid.push(capacity(*l));
                }
                self.dense_paths.push(self.remap[li]);
            }
            self.spans
                .push((start, self.dense_paths.len() as u32 - start));
            self.queues.push(q as u32);
        }
        let touched = self.resid.len();
        if self.sum_w.len() < touched {
            self.sum_w.resize(touched, 0.0);
            self.sumw_epoch.resize(touched, 0);
            self.share.resize(touched, 0.0);
        }
        let Self {
            epoch,
            resid,
            sum_w,
            sumw_epoch,
            share,
            pass_links,
            dense_paths,
            spans,
            queues,
            counts,
            used_slots,
            idx,
            heap,
            frozen_epoch,
            ..
        } = self;
        match discipline {
            Discipline::StrictPriority { num_queues } => {
                for q in 0..*num_queues {
                    idx.clear();
                    idx.extend(
                        (0..n)
                            .filter(|&i| queues[i] as usize == q && spans[i].1 > 0)
                            .map(|i| i as u32),
                    );
                    if !idx.is_empty() {
                        *epoch += 1;
                        waterfill(
                            spans,
                            dense_paths,
                            idx,
                            |_, _| 1.0,
                            *epoch,
                            resid,
                            sum_w,
                            sumw_epoch,
                            share,
                            pass_links,
                            heap,
                            frozen_epoch,
                            rates,
                        );
                    }
                }
            }
            Discipline::WeightedRoundRobin { weights } => {
                for &w in weights {
                    assert!(w.is_finite() && w > 0.0, "WRR weights must be positive");
                }
                // Per-link, per-queue flow counts to derive per-(flow,
                // link) weights w_q / n_{q,l}: each backlogged queue
                // receives its w_q share of the link, split max-min
                // among its flows.
                let slots = weights.len() * touched;
                if counts.len() < slots {
                    counts.resize(slots, 0.0);
                }
                used_slots.clear();
                for i in 0..n {
                    let (s, len) = spans[i];
                    let q = queues[i] as usize;
                    for &dli in &dense_paths[s as usize..(s + len) as usize] {
                        let slot = q * touched + dli as usize;
                        if counts[slot] == 0.0 {
                            used_slots.push(slot);
                        }
                        counts[slot] += 1.0;
                    }
                }
                // Turn the counts into the per-(queue, link) weights
                // w_q / n_{q,l} in place: the waterfill evaluates weights
                // many times per link, so dividing once here replaces a
                // division per evaluation with a load (same operands,
                // bit-identical result).
                for &slot in used_slots.iter() {
                    counts[slot] = weights[slot / touched] / counts[slot];
                }
                idx.clear();
                idx.extend((0..n).filter(|&i| spans[i].1 > 0).map(|i| i as u32));
                if !idx.is_empty() {
                    *epoch += 1;
                    let counts_ro = &*counts;
                    let queues = &*queues;
                    waterfill(
                        spans,
                        dense_paths,
                        idx,
                        |i: usize, li: usize| counts_ro[queues[i] as usize * touched + li],
                        *epoch,
                        resid,
                        sum_w,
                        sumw_epoch,
                        share,
                        pass_links,
                        heap,
                        frozen_epoch,
                        rates,
                    );
                }
                // Restore the all-zero invariant for the next call.
                for &slot in used_slots.iter() {
                    counts[slot] = 0.0;
                }
            }
        }
    }
}

/// Computes per-flow rates for `demands` under `discipline`, where link
/// `l` has capacity `capacity(l)` bytes per second.
///
/// One-shot convenience wrapper over [`Allocator::allocate_into`] that
/// sizes a temporary allocator from the largest link index present.
/// Returns one rate per demand, in order. Flows with an empty path get
/// `f64::INFINITY` (they complete instantly in the fluid model).
///
/// # Panics
///
/// Panics if a demand's queue index is `>= discipline.num_queues()`, or
/// if a WRR weight is not positive and finite.
pub fn allocate(
    demands: &[Demand<'_>],
    capacity: impl Fn(LinkId) -> f64,
    discipline: &Discipline,
) -> Vec<f64> {
    let num_links = demands
        .iter()
        .flat_map(|d| d.path.iter())
        .map(|l| l.index() + 1)
        .max()
        .unwrap_or(0);
    let mut alloc = Allocator::new(num_links);
    let mut rates = vec![f64::INFINITY; demands.len()];
    alloc.allocate_into(demands, capacity, discipline, &mut rates);
    rates
}

/// One weighted water-filling pass over the demand subset `idx`,
/// against dense per-call link state (`resid`/`sum_w` are indexed by the
/// remapped link ids stored in `dense_paths`).
///
/// `resid` carries residual link capacities across passes (SPQ calls
/// this once per priority class; [`Allocator::allocate_into`] seeds each
/// touched link from `capacity` when remapping). Frozen flows'
/// consumption is subtracted from every link on their paths.
///
/// The freeze criterion is flow-centric: a flow's candidate rate is
/// `min over its links of w(f, l) * share(l)`, and the globally minimal
/// candidate freezes first. This is the correct generalization of
/// progressive filling when weights differ per (flow, link), as they do
/// under WRR: freezing by minimal *link share* can overcommit a link
/// where the flow carries a smaller weight. With per-flow candidate
/// freezing, `rate_f <= w(f, l) * share(l)` holds on every link of the
/// flow's path at freeze time, so shares are non-decreasing and no link
/// is ever oversubscribed.
#[allow(clippy::too_many_arguments)]
fn waterfill(
    spans: &[(u32, u32)],
    dense_paths: &[u32],
    idx: &[u32],
    weight: impl Fn(usize, usize) -> f64,
    pass_epoch: u64,
    resid: &mut [f64],
    sum_w: &mut [f64],
    sumw_epoch: &mut [u64],
    share: &mut [f64],
    pass_links: &mut Vec<u32>,
    heap: &mut BinaryHeap<Candidate>,
    frozen_epoch: &mut [u64],
    rates: &mut [f64],
) {
    let path = |f: usize| {
        let (s, len) = spans[f];
        &dense_paths[s as usize..(s + len) as usize]
    };
    pass_links.clear();
    for &fi in idx {
        let f = fi as usize;
        for &dli in path(f) {
            let li = dli as usize;
            if sumw_epoch[li] != pass_epoch {
                sum_w[li] = 0.0;
                sumw_epoch[li] = pass_epoch;
                pass_links.push(dli);
            }
            sum_w[li] += weight(f, li);
        }
    }
    // Cache each touched link's fair share. Candidate evaluation is the
    // hot loop (many evaluations per link), so replacing the division
    // with a load pays; the cache is refreshed whenever a freeze changes
    // a link, keeping every read bit-identical to computing on the fly.
    for &dli in pass_links.iter() {
        let li = dli as usize;
        share[li] = link_share(resid[li], sum_w[li]);
    }
    let candidate_rate = |share: &[f64], f: usize| -> f64 {
        path(f)
            .iter()
            .map(|&dli| weight(f, dli as usize) * share[dli as usize])
            .fold(f64::INFINITY, f64::min)
    };
    // Rebuild the heap by heapify (as `collect` would) into the retained
    // buffer so candidate ordering is reproducible and allocation-free.
    let mut buf = std::mem::take(heap).into_vec();
    buf.clear();
    buf.extend(idx.iter().map(|&fi| Candidate {
        rate: candidate_rate(share, fi as usize),
        flow: fi,
    }));
    *heap = BinaryHeap::from(buf);
    while let Some(cand) = heap.pop() {
        let f = cand.flow as usize;
        if frozen_epoch[f] == pass_epoch {
            continue;
        }
        // Link shares only grow, so a stale entry underestimates. If the
        // fresh value is no longer the minimum, re-queue it. When the
        // heap is empty this candidate is the last unfrozen flow and the
        // freshly recomputed value *is* its final rate — the flow always
        // freezes at `fresh`, never at the stale entry value.
        //
        // The EPS slack makes freeze *order* depend on which flows share
        // the call: at an exact tie, an unrelated flow's presence can
        // flip which side of the slack a comparison lands on. That is
        // why the engine gives every allocation the same canonical
        // shape — one `allocate_into` call per connected flow↔link
        // component, full passes included — so the demand set (and
        // hence every freeze decision) is identical no matter how a
        // recompute was triggered or scheduled.
        let fresh = candidate_rate(share, f);
        if let Some(top) = heap.peek() {
            if fresh > top.rate + EPS && fresh > cand.rate + EPS {
                heap.push(Candidate {
                    rate: fresh,
                    flow: cand.flow,
                });
                continue;
            }
        }
        frozen_epoch[f] = pass_epoch;
        let rate = if fresh.is_finite() {
            fresh.max(0.0)
        } else {
            0.0
        };
        rates[f] = rate;
        for &dli in path(f) {
            let li = dli as usize;
            resid[li] = (resid[li] - rate).max(0.0);
            sum_w[li] = (sum_w[li] - weight(f, li)).max(0.0);
            share[li] = link_share(resid[li], sum_w[li]);
        }
    }
}

/// Fair share of one link: residual capacity split over the remaining
/// weight, `INFINITY` when (effectively) no weight remains.
fn link_share(resid: f64, sum_w: f64) -> f64 {
    if sum_w <= EPS {
        f64::INFINITY
    } else {
        (resid / sum_w).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn caps_all(c: f64) -> impl Fn(LinkId) -> f64 {
        move |_| c
    }

    fn spq(n: usize) -> Discipline {
        Discipline::StrictPriority { num_queues: n }
    }

    #[test]
    fn single_link_equal_share() {
        let l = [LinkId(0)];
        let demands = vec![
            Demand { path: &l, queue: 0 },
            Demand { path: &l, queue: 0 },
            Demand { path: &l, queue: 0 },
        ];
        let rates = allocate(&demands, caps_all(9.0), &spq(1));
        for r in &rates {
            assert!((r - 3.0).abs() < 1e-9, "rate {r}");
        }
    }

    #[test]
    fn local_flow_gets_infinite_rate() {
        let demands = vec![Demand {
            path: &[],
            queue: 0,
        }];
        let rates = allocate(&demands, caps_all(1.0), &spq(1));
        assert_eq!(rates[0], f64::INFINITY);
    }

    #[test]
    fn bottleneck_and_spillover() {
        // Flow A on links {0, 1}; flow B on {0}; flow C on {1}.
        // Link 0 cap 2, link 1 cap 10.
        let ab = [LinkId(0), LinkId(1)];
        let b = [LinkId(0)];
        let c = [LinkId(1)];
        let demands = vec![
            Demand {
                path: &ab,
                queue: 0,
            },
            Demand { path: &b, queue: 0 },
            Demand { path: &c, queue: 0 },
        ];
        let caps = |l: LinkId| if l.index() == 0 { 2.0 } else { 10.0 };
        let rates = allocate(&demands, caps, &spq(1));
        // Max-min: A and B split link 0 -> 1 each; C takes the rest of link 1 -> 9.
        assert!((rates[0] - 1.0).abs() < 1e-9);
        assert!((rates[1] - 1.0).abs() < 1e-9);
        assert!((rates[2] - 9.0).abs() < 1e-9);
    }

    #[test]
    fn last_popped_candidate_rechecks_fresh_rate_when_heap_is_empty() {
        // Flow A on {0} (cap 10), flow B on {0, 1} (link 1 cap 2).
        // B freezes first at 2 (bottlenecked on link 1); A's heap entry
        // (rate 5 = 10/2) is then stale and pops with the heap *empty*.
        // It must freeze at its freshly recomputed rate 8 (= 10 - 2),
        // not the stale candidate value 5.
        let a = [LinkId(0)];
        let b = [LinkId(0), LinkId(1)];
        let demands = vec![Demand { path: &a, queue: 0 }, Demand { path: &b, queue: 0 }];
        let caps = |l: LinkId| if l.index() == 0 { 10.0 } else { 2.0 };
        let rates = allocate(&demands, caps, &spq(1));
        assert!((rates[1] - 2.0).abs() < 1e-9, "B rate {}", rates[1]);
        assert!(
            (rates[0] - 8.0).abs() < 1e-9,
            "last candidate must freeze at its fresh rate, got {}",
            rates[0]
        );
    }

    #[test]
    fn strict_priority_starves_lower_class() {
        let l = [LinkId(0)];
        let demands = vec![Demand { path: &l, queue: 0 }, Demand { path: &l, queue: 1 }];
        let rates = allocate(&demands, caps_all(5.0), &spq(2));
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!(
            rates[1].abs() < 1e-9,
            "lower priority must starve, got {}",
            rates[1]
        );
    }

    #[test]
    fn strict_priority_leftover_flows_down() {
        // High-priority flow bottlenecked elsewhere leaves capacity.
        let high = [LinkId(0), LinkId(1)]; // link 1 cap 1 bottlenecks it
        let low = [LinkId(0)];
        let demands = vec![
            Demand {
                path: &high,
                queue: 0,
            },
            Demand {
                path: &low,
                queue: 1,
            },
        ];
        let caps = |l: LinkId| if l.index() == 1 { 1.0 } else { 4.0 };
        let rates = allocate(&demands, caps, &spq(2));
        assert!((rates[0] - 1.0).abs() < 1e-9);
        assert!((rates[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn wrr_respects_weights() {
        let l = [LinkId(0)];
        let demands = vec![Demand { path: &l, queue: 0 }, Demand { path: &l, queue: 1 }];
        let disc = Discipline::WeightedRoundRobin {
            weights: vec![3.0, 1.0],
        };
        let rates = allocate(&demands, caps_all(8.0), &disc);
        assert!((rates[0] - 6.0).abs() < 1e-9);
        assert!((rates[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn wrr_splits_within_queue() {
        let l = [LinkId(0)];
        let demands = vec![
            Demand { path: &l, queue: 0 },
            Demand { path: &l, queue: 0 },
            Demand { path: &l, queue: 1 },
        ];
        let disc = Discipline::WeightedRoundRobin {
            weights: vec![2.0, 2.0],
        };
        let rates = allocate(&demands, caps_all(8.0), &disc);
        // Queue 0 gets 4 split two ways; queue 1 gets 4.
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 2.0).abs() < 1e-9);
        assert!((rates[2] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn wrr_is_work_conserving() {
        // Only queue 1 backlogged: it should take the whole link.
        let l = [LinkId(0)];
        let demands = vec![Demand { path: &l, queue: 1 }];
        let disc = Discipline::WeightedRoundRobin {
            weights: vec![9.0, 1.0],
        };
        let rates = allocate(&demands, caps_all(4.0), &disc);
        assert!((rates[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn no_link_exceeds_capacity_on_random_meshes() {
        // Deterministic pseudo-random demands over a small link set.
        let mut state = 12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let link_ids: Vec<[LinkId; 3]> = (0..40)
            .map(|_| {
                [
                    LinkId(next() % 10),
                    LinkId(10 + next() % 10),
                    LinkId(20 + next() % 10),
                ]
            })
            .collect();
        let demands: Vec<Demand<'_>> = link_ids
            .iter()
            .map(|p| Demand {
                path: p.as_slice(),
                queue: next() % 3,
            })
            .collect();
        for disc in [
            spq(3),
            Discipline::WeightedRoundRobin {
                weights: vec![4.0, 2.0, 1.0],
            },
        ] {
            let rates = allocate(&demands, caps_all(10.0), &disc);
            let mut usage: HashMap<usize, f64> = HashMap::new();
            for (d, r) in demands.iter().zip(&rates) {
                assert!(r.is_finite() && *r >= 0.0);
                for l in d.path {
                    *usage.entry(l.index()).or_insert(0.0) += r;
                }
            }
            for (&l, &u) in &usage {
                assert!(u <= 10.0 + 1e-6, "link {l} over capacity: {u}");
            }
        }
    }

    #[test]
    fn reused_allocator_matches_fresh_allocation() {
        // One Allocator reused across many different demand sets (and
        // both disciplines) must produce exactly what a from-scratch
        // call computes: the epoch-stamped scratch may never leak state
        // between calls.
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut shared = Allocator::new(30);
        for round in 0..25 {
            let nflows = 1 + next() % 30;
            let link_ids: Vec<Vec<LinkId>> = (0..nflows)
                .map(|_| (0..(1 + next() % 4)).map(|_| LinkId(next() % 30)).collect())
                .collect();
            let demands: Vec<Demand<'_>> = link_ids
                .iter()
                .map(|p| Demand {
                    path: p.as_slice(),
                    queue: next() % 3,
                })
                .collect();
            let disc = if round % 2 == 0 {
                spq(3)
            } else {
                Discipline::WeightedRoundRobin {
                    weights: vec![5.0, 2.0, 1.0],
                }
            };
            let cap = move |l: LinkId| 1.0 + (l.index() % 7) as f64;
            let fresh = allocate(&demands, cap, &disc);
            let mut reused = vec![0.0; demands.len()];
            shared.allocate_into(&demands[..], cap, &disc, &mut reused);
            for (i, (a, b)) in fresh.iter().zip(&reused).enumerate() {
                assert!(
                    (a - b).abs() < 1e-12,
                    "round {round} flow {i}: fresh {a} vs reused {b}"
                );
            }
        }
    }

    #[test]
    fn allocation_is_bottleneck_tight() {
        // Max-min property: every flow is saturated at some link.
        let p1 = [LinkId(0), LinkId(1)];
        let p2 = [LinkId(1), LinkId(2)];
        let p3 = [LinkId(2)];
        let demands = vec![
            Demand {
                path: &p1,
                queue: 0,
            },
            Demand {
                path: &p2,
                queue: 0,
            },
            Demand {
                path: &p3,
                queue: 0,
            },
        ];
        let rates = allocate(&demands, caps_all(6.0), &spq(1));
        let mut usage = [0.0f64; 3];
        for (d, r) in demands.iter().zip(&rates) {
            for l in d.path {
                usage[l.index()] += r;
            }
        }
        for (d, r) in demands.iter().zip(&rates) {
            let tight = d.path.iter().any(|l| usage[l.index()] >= 6.0 - 1e-6);
            assert!(tight, "flow with rate {r} not bottlenecked anywhere");
        }
    }

    #[test]
    #[should_panic(expected = "queue")]
    fn rejects_out_of_range_queue() {
        let l = [LinkId(0)];
        let demands = vec![Demand { path: &l, queue: 5 }];
        let _ = allocate(&demands, caps_all(1.0), &spq(2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_wrr_weight() {
        let l = [LinkId(0)];
        let demands = [Demand { path: &l, queue: 0 }];
        let disc = Discipline::WeightedRoundRobin { weights: vec![0.0] };
        let _ = allocate(&demands, caps_all(1.0), &disc);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_link_outside_allocator_bounds() {
        let l = [LinkId(7)];
        let demands = [Demand { path: &l, queue: 0 }];
        let mut alloc = Allocator::new(4);
        let mut rates = vec![0.0];
        alloc.allocate_into(&demands[..], caps_all(1.0), &spq(1), &mut rates);
    }

    #[test]
    fn empty_demand_set_is_fine() {
        let rates = allocate(&[], caps_all(1.0), &spq(4));
        assert!(rates.is_empty());
    }
}
