//! Weighted max-min ("water-filling") bandwidth allocation.
//!
//! The simulator is a fluid model: at any instant every active flow
//! transmits at a rate determined by the network's service discipline.
//! Within a priority class, flows share capacity max-min fairly — the
//! standard flow-level approximation of many TCP flows in steady state
//! (the paper: "we implement a rate limiter that behaves like TCP").
//!
//! Two service disciplines are provided:
//!
//! * [`Discipline::StrictPriority`] — strict priority queuing (SPQ), the
//!   built-in commodity-switch feature Gurita and Stream use to enforce
//!   scheduling decisions: all capacity goes to the highest backlogged
//!   priority on each link; lower priorities receive leftovers only.
//! * [`Discipline::WeightedRoundRobin`] — Gurita's starvation mitigation:
//!   SPQ is *emulated* with WRR so that "lower priority traffic transmits
//!   at a much lower rate than higher priority traffic" instead of
//!   starving. On each link, backlogged queue `q` receives a `w_q`
//!   fraction of capacity, shared max-min fairly among its flows
//!   (work-conserving: idle queues' shares are redistributed).
//!
//! The allocator is a progressive water-filling over per-(flow, link)
//! weights with a lazy min-heap of bottleneck candidates, giving
//! `O(F · |path| · log L)` allocation cost.

use crate::topology::LinkId;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// A flow's bandwidth demand: the links it traverses and the priority
/// queue it currently transmits in.
#[derive(Debug, Clone)]
pub struct Demand<'a> {
    /// Directed links traversed, in order. An empty path means a
    /// host-local transfer: the allocator reports `f64::INFINITY`.
    pub path: &'a [LinkId],
    /// Priority queue index: 0 is the *highest* priority.
    pub queue: usize,
}

/// Service discipline applied at every link.
#[derive(Debug, Clone, PartialEq)]
pub enum Discipline {
    /// Strict priority queuing with `num_queues` classes.
    StrictPriority {
        /// Number of priority classes (queue indexes are `0..num_queues`).
        num_queues: usize,
    },
    /// Weighted round robin: queue `q` of every link is served in
    /// proportion to `weights[q]`. Weights must be positive; they are
    /// normalized internally.
    WeightedRoundRobin {
        /// Per-queue service weights (index 0 = highest priority queue).
        weights: Vec<f64>,
    },
}

impl Discipline {
    /// Number of queues this discipline serves.
    pub fn num_queues(&self) -> usize {
        match self {
            Discipline::StrictPriority { num_queues } => *num_queues,
            Discipline::WeightedRoundRobin { weights } => weights.len(),
        }
    }
}

const EPS: f64 = 1e-12;

#[derive(Debug)]
struct LinkState {
    resid: f64,
    sum_w: f64,
    flows: Vec<u32>,
}

impl LinkState {
    /// Current fair share per unit of weight on this link.
    fn share(&self) -> f64 {
        if self.sum_w <= EPS {
            f64::INFINITY
        } else {
            (self.resid / self.sum_w).max(0.0)
        }
    }
}

/// Heap entry: candidate bottleneck rate for a flow (min-rate first).
///
/// Entries go stale when a link on the flow's path changes; since link
/// shares only ever increase as flows freeze, a stale entry can only
/// *under*estimate the flow's true candidate rate, so the pop-recheck-
/// repush loop in [`waterfill`] is sound.
#[derive(Debug)]
struct Candidate {
    rate: f64,
    flow: u32,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.rate == other.rate
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the min rate on top.
        other
            .rate
            .partial_cmp(&self.rate)
            .unwrap_or(Ordering::Equal)
    }
}

/// Computes per-flow rates for `demands` under `discipline`, where link
/// `l` has capacity `capacity(l)` bytes per second.
///
/// Returns one rate per demand, in order. Flows with an empty path get
/// `f64::INFINITY` (they complete instantly in the fluid model).
///
/// # Panics
///
/// Panics if a demand's queue index is `>= discipline.num_queues()`, or
/// if a WRR weight is not positive and finite.
pub fn allocate(
    demands: &[Demand<'_>],
    capacity: impl Fn(LinkId) -> f64,
    discipline: &Discipline,
) -> Vec<f64> {
    let nq = discipline.num_queues();
    for d in demands {
        assert!(
            d.queue < nq,
            "demand queue {} out of range ({} queues)",
            d.queue,
            nq
        );
    }
    let mut rates = vec![f64::INFINITY; demands.len()];
    match discipline {
        Discipline::StrictPriority { num_queues } => {
            // Residual capacities persist across priority passes.
            let mut resid: HashMap<usize, f64> = HashMap::new();
            for q in 0..*num_queues {
                let idx: Vec<u32> = demands
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| d.queue == q && !d.path.is_empty())
                    .map(|(i, _)| i as u32)
                    .collect();
                if idx.is_empty() {
                    continue;
                }
                waterfill(demands, &idx, |_, _| 1.0, &capacity, &mut resid, &mut rates);
            }
        }
        Discipline::WeightedRoundRobin { weights } => {
            for &w in weights {
                assert!(w.is_finite() && w > 0.0, "WRR weights must be positive");
            }
            // Per-link, per-queue flow counts to derive per-(flow, link)
            // weights w_q / n_{q,l}: each backlogged queue receives its
            // w_q share of the link, split max-min among its flows.
            let mut counts: HashMap<(usize, usize), f64> = HashMap::new();
            for d in demands.iter().filter(|d| !d.path.is_empty()) {
                for l in d.path {
                    *counts.entry((d.queue, l.index())).or_insert(0.0) += 1.0;
                }
            }
            let idx: Vec<u32> = demands
                .iter()
                .enumerate()
                .filter(|(_, d)| !d.path.is_empty())
                .map(|(i, _)| i as u32)
                .collect();
            let mut resid: HashMap<usize, f64> = HashMap::new();
            waterfill(
                demands,
                &idx,
                |d: &Demand<'_>, l: usize| weights[d.queue] / counts[&(d.queue, l)],
                &capacity,
                &mut resid,
                &mut rates,
            );
        }
    }
    rates
}

/// One weighted water-filling pass over the demand subset `idx`.
///
/// `resid` carries residual link capacities across passes (SPQ calls this
/// once per priority class). Frozen flows' consumption is subtracted from
/// every link on their paths.
///
/// The freeze criterion is flow-centric: a flow's candidate rate is
/// `min over its links of w(f, l) * share(l)`, and the globally minimal
/// candidate freezes first. This is the correct generalization of
/// progressive filling when weights differ per (flow, link), as they do
/// under WRR: freezing by minimal *link share* can overcommit a link
/// where the flow carries a smaller weight. With per-flow candidate
/// freezing, `rate_f <= w(f, l) * share(l)` holds on every link of the
/// flow's path at freeze time, so shares are non-decreasing and no link
/// is ever oversubscribed.
fn waterfill(
    demands: &[Demand<'_>],
    idx: &[u32],
    weight: impl Fn(&Demand<'_>, usize) -> f64,
    capacity: &impl Fn(LinkId) -> f64,
    resid: &mut HashMap<usize, f64>,
    rates: &mut [f64],
) {
    let mut links: HashMap<usize, LinkState> = HashMap::new();
    for &fi in idx {
        for l in demands[fi as usize].path {
            let li = l.index();
            let state = links.entry(li).or_insert_with(|| LinkState {
                resid: *resid.entry(li).or_insert_with(|| capacity(*l)),
                sum_w: 0.0,
                flows: Vec::new(),
            });
            state.sum_w += weight(&demands[fi as usize], li);
            state.flows.push(fi);
        }
    }
    let candidate_rate = |f: u32, links: &HashMap<usize, LinkState>| -> f64 {
        demands[f as usize]
            .path
            .iter()
            .map(|l| weight(&demands[f as usize], l.index()) * links[&l.index()].share())
            .fold(f64::INFINITY, f64::min)
    };
    let mut heap: BinaryHeap<Candidate> = idx
        .iter()
        .map(|&fi| Candidate {
            rate: candidate_rate(fi, &links),
            flow: fi,
        })
        .collect();
    let mut frozen = vec![false; demands.len()];
    while let Some(cand) = heap.pop() {
        let f = cand.flow as usize;
        if frozen[f] {
            continue;
        }
        // Link shares only grow, so a stale entry underestimates. If the
        // fresh value is no longer the minimum, re-queue it.
        let fresh = candidate_rate(cand.flow, &links);
        if let Some(top) = heap.peek() {
            if fresh > top.rate + EPS && fresh > cand.rate + EPS {
                heap.push(Candidate {
                    rate: fresh,
                    flow: cand.flow,
                });
                continue;
            }
        }
        frozen[f] = true;
        let rate = if fresh.is_finite() {
            fresh.max(0.0)
        } else {
            0.0
        };
        rates[f] = rate;
        for l in demands[f].path {
            let s = links.get_mut(&l.index()).expect("path link registered");
            s.resid = (s.resid - rate).max(0.0);
            s.sum_w = (s.sum_w - weight(&demands[f], l.index())).max(0.0);
        }
    }
    // Persist residuals for subsequent passes.
    for (li, s) in links {
        resid.insert(li, s.resid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps_all(c: f64) -> impl Fn(LinkId) -> f64 {
        move |_| c
    }

    fn spq(n: usize) -> Discipline {
        Discipline::StrictPriority { num_queues: n }
    }

    #[test]
    fn single_link_equal_share() {
        let l = [LinkId(0)];
        let demands = vec![
            Demand { path: &l, queue: 0 },
            Demand { path: &l, queue: 0 },
            Demand { path: &l, queue: 0 },
        ];
        let rates = allocate(&demands, caps_all(9.0), &spq(1));
        for r in &rates {
            assert!((r - 3.0).abs() < 1e-9, "rate {r}");
        }
    }

    #[test]
    fn local_flow_gets_infinite_rate() {
        let demands = vec![Demand {
            path: &[],
            queue: 0,
        }];
        let rates = allocate(&demands, caps_all(1.0), &spq(1));
        assert_eq!(rates[0], f64::INFINITY);
    }

    #[test]
    fn bottleneck_and_spillover() {
        // Flow A on links {0, 1}; flow B on {0}; flow C on {1}.
        // Link 0 cap 2, link 1 cap 10.
        let ab = [LinkId(0), LinkId(1)];
        let b = [LinkId(0)];
        let c = [LinkId(1)];
        let demands = vec![
            Demand {
                path: &ab,
                queue: 0,
            },
            Demand { path: &b, queue: 0 },
            Demand { path: &c, queue: 0 },
        ];
        let caps = |l: LinkId| if l.index() == 0 { 2.0 } else { 10.0 };
        let rates = allocate(&demands, caps, &spq(1));
        // Max-min: A and B split link 0 -> 1 each; C takes the rest of link 1 -> 9.
        assert!((rates[0] - 1.0).abs() < 1e-9);
        assert!((rates[1] - 1.0).abs() < 1e-9);
        assert!((rates[2] - 9.0).abs() < 1e-9);
    }

    #[test]
    fn strict_priority_starves_lower_class() {
        let l = [LinkId(0)];
        let demands = vec![Demand { path: &l, queue: 0 }, Demand { path: &l, queue: 1 }];
        let rates = allocate(&demands, caps_all(5.0), &spq(2));
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!(
            rates[1].abs() < 1e-9,
            "lower priority must starve, got {}",
            rates[1]
        );
    }

    #[test]
    fn strict_priority_leftover_flows_down() {
        // High-priority flow bottlenecked elsewhere leaves capacity.
        let high = [LinkId(0), LinkId(1)]; // link 1 cap 1 bottlenecks it
        let low = [LinkId(0)];
        let demands = vec![
            Demand {
                path: &high,
                queue: 0,
            },
            Demand {
                path: &low,
                queue: 1,
            },
        ];
        let caps = |l: LinkId| if l.index() == 1 { 1.0 } else { 4.0 };
        let rates = allocate(&demands, caps, &spq(2));
        assert!((rates[0] - 1.0).abs() < 1e-9);
        assert!((rates[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn wrr_respects_weights() {
        let l = [LinkId(0)];
        let demands = vec![Demand { path: &l, queue: 0 }, Demand { path: &l, queue: 1 }];
        let disc = Discipline::WeightedRoundRobin {
            weights: vec![3.0, 1.0],
        };
        let rates = allocate(&demands, caps_all(8.0), &disc);
        assert!((rates[0] - 6.0).abs() < 1e-9);
        assert!((rates[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn wrr_splits_within_queue() {
        let l = [LinkId(0)];
        let demands = vec![
            Demand { path: &l, queue: 0 },
            Demand { path: &l, queue: 0 },
            Demand { path: &l, queue: 1 },
        ];
        let disc = Discipline::WeightedRoundRobin {
            weights: vec![2.0, 2.0],
        };
        let rates = allocate(&demands, caps_all(8.0), &disc);
        // Queue 0 gets 4 split two ways; queue 1 gets 4.
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 2.0).abs() < 1e-9);
        assert!((rates[2] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn wrr_is_work_conserving() {
        // Only queue 1 backlogged: it should take the whole link.
        let l = [LinkId(0)];
        let demands = vec![Demand { path: &l, queue: 1 }];
        let disc = Discipline::WeightedRoundRobin {
            weights: vec![9.0, 1.0],
        };
        let rates = allocate(&demands, caps_all(4.0), &disc);
        assert!((rates[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn no_link_exceeds_capacity_on_random_meshes() {
        // Deterministic pseudo-random demands over a small link set.
        let mut state = 12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let link_ids: Vec<[LinkId; 3]> = (0..40)
            .map(|_| {
                [
                    LinkId(next() % 10),
                    LinkId(10 + next() % 10),
                    LinkId(20 + next() % 10),
                ]
            })
            .collect();
        let demands: Vec<Demand<'_>> = link_ids
            .iter()
            .map(|p| Demand {
                path: p.as_slice(),
                queue: next() % 3,
            })
            .collect();
        for disc in [
            spq(3),
            Discipline::WeightedRoundRobin {
                weights: vec![4.0, 2.0, 1.0],
            },
        ] {
            let rates = allocate(&demands, caps_all(10.0), &disc);
            let mut usage: HashMap<usize, f64> = HashMap::new();
            for (d, r) in demands.iter().zip(&rates) {
                assert!(r.is_finite() && *r >= 0.0);
                for l in d.path {
                    *usage.entry(l.index()).or_insert(0.0) += r;
                }
            }
            for (&l, &u) in &usage {
                assert!(u <= 10.0 + 1e-6, "link {l} over capacity: {u}");
            }
        }
    }

    #[test]
    fn allocation_is_bottleneck_tight() {
        // Max-min property: every flow is saturated at some link.
        let p1 = [LinkId(0), LinkId(1)];
        let p2 = [LinkId(1), LinkId(2)];
        let p3 = [LinkId(2)];
        let demands = vec![
            Demand {
                path: &p1,
                queue: 0,
            },
            Demand {
                path: &p2,
                queue: 0,
            },
            Demand {
                path: &p3,
                queue: 0,
            },
        ];
        let rates = allocate(&demands, caps_all(6.0), &spq(1));
        let mut usage = [0.0f64; 3];
        for (d, r) in demands.iter().zip(&rates) {
            for l in d.path {
                usage[l.index()] += r;
            }
        }
        for (d, r) in demands.iter().zip(&rates) {
            let tight = d.path.iter().any(|l| usage[l.index()] >= 6.0 - 1e-6);
            assert!(tight, "flow with rate {r} not bottlenecked anywhere");
        }
    }

    #[test]
    #[should_panic(expected = "queue")]
    fn rejects_out_of_range_queue() {
        let l = [LinkId(0)];
        let demands = vec![Demand { path: &l, queue: 5 }];
        let _ = allocate(&demands, caps_all(1.0), &spq(2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_wrr_weight() {
        let l = [LinkId(0)];
        let demands = vec![Demand { path: &l, queue: 0 }];
        let disc = Discipline::WeightedRoundRobin { weights: vec![0.0] };
        let _ = allocate(&demands, caps_all(1.0), &disc);
    }

    #[test]
    fn empty_demand_set_is_fine() {
        let rates = allocate(&[], caps_all(1.0), &spq(4));
        assert!(rates.is_empty());
    }
}
