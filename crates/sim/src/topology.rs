//! Datacenter fabrics.
//!
//! Two fabrics are provided:
//!
//! * [`FatTree`] — the k-pod fat-tree of Al-Fares et al. (SIGCOMM'08)
//!   used in the paper's evaluation (8 pods: 128 servers / 80 switches;
//!   48 pods: 27 648 servers / 2 880 switches), with ECMP multipath
//!   routing;
//! * [`BigSwitch`] — the non-blocking "datacenter fabric as one big
//!   switch" abstraction (only host NICs can be bottlenecks) used by the
//!   coflow literature for analysis.
//!
//! Both implement [`Fabric`], which the runtime uses to resolve a flow's
//! endpoints into a sequence of directed, capacitated links — either as
//! an owned `Vec<LinkId>` ([`Fabric::path`]) or as a [`PathRef`] into a
//! shared, deduplicated [`PathArena`] ([`Fabric::path_ref`], the
//! large-fabric fast path: ECMP produces few distinct routes, so flows
//! share interned slices instead of each carrying a heap allocation).

use crate::SimError;
use gurita_model::{units, HostId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a directed link within a fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub usize);

impl LinkId {
    /// Raw index of the link.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of an interned path inside a [`PathArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathId(u32);

impl PathId {
    /// Raw arena index of the path.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A cheap, copyable handle to an interned path: the arena id plus the
/// path's hop count, so length/emptiness checks need no arena lookup.
///
/// Resolve the links with [`PathArena::get`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathRef {
    id: PathId,
    len: u32,
}

impl PathRef {
    /// The interned path's arena id.
    #[inline]
    pub fn id(self) -> PathId {
        self.id
    }

    /// Number of links on the path.
    #[inline]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Whether the path is empty (a host-local transfer).
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// Shared, deduplicated path storage.
///
/// ECMP routing on a k-pod fat-tree yields only `(k/2)²` distinct
/// cross-pod link sequences per host pair (and far fewer per edge
/// pair), so the flows of a large run collapse onto a compact set of
/// interned slices instead of carrying one heap-allocated
/// `Vec<LinkId>` each. Paths are stored concatenated in one contiguous
/// buffer; [`PathRef`] handles are `Copy` and resolve via [`PathArena::get`].
///
/// The arena also counts intern requests and dedup hits so runs can
/// report a hit rate (see `RunResult::path_arena_hit_rate`).
#[derive(Debug, Default)]
pub struct PathArena {
    /// Concatenated link storage for every distinct path.
    links: Vec<LinkId>,
    /// `PathId` → `(start, len)` span into `links`.
    spans: Vec<(u32, u32)>,
    dedup: HashMap<Box<[LinkId]>, PathId>,
    hits: u64,
}

impl PathArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `path`, returning the existing handle when an identical
    /// link sequence was interned before.
    ///
    /// # Panics
    ///
    /// Panics if the arena exceeds `u32::MAX` distinct paths or stored
    /// links (unreachable for any simulated fabric).
    pub fn intern(&mut self, path: &[LinkId]) -> PathRef {
        if let Some(&id) = self.dedup.get(path) {
            self.hits += 1;
            return PathRef {
                id,
                len: self.spans[id.index()].1,
            };
        }
        let id = PathId(u32::try_from(self.spans.len()).expect("path arena id overflow"));
        let start = u32::try_from(self.links.len()).expect("path arena storage overflow");
        let len = u32::try_from(path.len()).expect("path longer than u32::MAX links");
        self.links.extend_from_slice(path);
        self.spans.push((start, len));
        self.dedup.insert(path.into(), id);
        PathRef { id, len }
    }

    /// The links of an interned path, in hop order.
    #[inline]
    pub fn get(&self, r: PathRef) -> &[LinkId] {
        self.resolve(r.id)
    }

    /// The links of the path with arena id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this arena.
    #[inline]
    pub fn resolve(&self, id: PathId) -> &[LinkId] {
        let (start, len) = self.spans[id.index()];
        &self.links[start as usize..(start + len) as usize]
    }

    /// Number of distinct paths interned so far.
    pub fn unique_paths(&self) -> usize {
        self.spans.len()
    }

    /// Total intern requests served (hits plus first-time interns).
    pub fn interns(&self) -> u64 {
        self.hits + self.spans.len() as u64
    }

    /// Fraction of intern requests served by an existing path; 0 when
    /// nothing was interned.
    pub fn hit_rate(&self) -> f64 {
        if self.interns() == 0 {
            0.0
        } else {
            self.hits as f64 / self.interns() as f64
        }
    }

    /// Approximate resident bytes of the interned storage (links plus
    /// spans; excludes the dedup map).
    pub fn storage_bytes(&self) -> usize {
        self.links.len() * std::mem::size_of::<LinkId>()
            + self.spans.len() * std::mem::size_of::<(u32, u32)>()
    }
}

/// A datacenter fabric: a set of directed, capacitated links plus a
/// routing function mapping flow endpoints to a path.
///
/// Implementations must be deterministic: the same `(src, dst, salt)`
/// triple always yields the same path (this is how ECMP's per-flow
/// hashing is modeled — `salt` is derived from the flow identifier).
///
/// `Sync` is a supertrait so the engine can query link capacities from
/// pool workers during parallel rate recomputation (see
/// [`SimConfig::threads`](crate::runtime::SimConfig::threads));
/// fabrics are immutable topology tables, so every provided
/// implementation is trivially `Sync`.
pub trait Fabric: Sync {
    /// Number of hosts (server NICs).
    fn num_hosts(&self) -> usize;

    /// Total number of directed links.
    fn num_links(&self) -> usize;

    /// Capacity of link `l` in bytes per second.
    ///
    /// # Panics
    ///
    /// May panic if `l` is out of range.
    fn link_capacity(&self, l: LinkId) -> f64;

    /// Computes the routed path from `src` to `dst` for a flow with ECMP
    /// salt `salt`. Returns an empty path when `src == dst` (a host-local
    /// transfer consumes no fabric capacity).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownHost`] if either endpoint is out of
    /// range.
    fn path(&self, src: HostId, dst: HostId, salt: u64) -> Result<Vec<LinkId>, SimError>;

    /// Interned variant of [`Fabric::path`]: resolves the same route and
    /// stores it in `arena`, returning a copyable [`PathRef`] handle.
    /// Must resolve (via [`PathArena::get`]) to exactly the slice
    /// [`Fabric::path`] returns for the same `(src, dst, salt)` —
    /// property-tested for the provided fabrics.
    ///
    /// The default delegates to [`Fabric::path`] and interns the result;
    /// implementations should override it to skip the intermediate
    /// allocation (both provided fabrics route into a stack buffer).
    ///
    /// # Errors
    ///
    /// Same as [`Fabric::path`].
    fn path_ref(
        &self,
        src: HostId,
        dst: HostId,
        salt: u64,
        arena: &mut PathArena,
    ) -> Result<PathRef, SimError> {
        Ok(arena.intern(&self.path(src, dst, salt)?))
    }
}

/// Deterministic 64-bit mix (splitmix64 finalizer) used for ECMP hashing.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A k-pod fat-tree fabric with ECMP routing.
///
/// For an even pod count `k`:
///
/// * hosts: `k^3 / 4`;
/// * edge switches: `k^2 / 2`; aggregation switches: `k^2 / 2`;
///   core switches: `k^2 / 4` (total `5k^2 / 4` switches);
/// * every link (host↔edge, edge↔agg, agg↔core) has the same capacity —
///   10 Gbit/s by default, as in the paper.
///
/// # Example
///
/// ```
/// use gurita_sim::topology::{Fabric, FatTree};
/// let small = FatTree::new(8)?;   // the paper's trace-driven fabric
/// assert_eq!(small.num_hosts(), 128);
/// assert_eq!(small.num_switches(), 80);
/// let large = FatTree::new(48)?;  // the paper's bursty large-scale fabric
/// assert_eq!(large.num_hosts(), 27_648);
/// assert_eq!(large.num_switches(), 2_880);
/// # Ok::<(), gurita_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FatTree {
    k: usize,
    half_k: usize,
    num_hosts: usize,
    capacity: f64,
    /// Capacity divisor for the edge→agg and agg→core layers (1.0 =
    /// full bisection, the classic rearrangeably non-blocking fat-tree).
    oversubscription: f64,
}

impl FatTree {
    /// Builds a fat-tree with `k` pods and 10 Gbit/s links.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidPodCount`] unless `k` is even and ≥ 2.
    pub fn new(k: usize) -> Result<Self, SimError> {
        Self::with_capacity(k, units::GBPS_10)
    }

    /// Builds a fat-tree with `k` pods and the given per-link capacity in
    /// bytes per second.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidPodCount`] unless `k` is even and ≥ 2.
    pub fn with_capacity(k: usize, capacity: f64) -> Result<Self, SimError> {
        if k < 2 || !k.is_multiple_of(2) {
            return Err(SimError::InvalidPodCount { k });
        }
        Ok(Self {
            k,
            half_k: k / 2,
            num_hosts: k * k * k / 4,
            capacity,
            oversubscription: 1.0,
        })
    }

    /// Returns a copy with the aggregation/core layers oversubscribed by
    /// `ratio` (e.g. 4.0 models the common 4:1 oversubscription — the
    /// fabric layers above the edge carry a quarter of the bisection a
    /// full fat-tree would). Host↔edge links keep full line rate.
    ///
    /// # Panics
    ///
    /// Panics unless `ratio >= 1`.
    pub fn with_oversubscription(mut self, ratio: f64) -> Self {
        assert!(ratio >= 1.0, "oversubscription ratio must be >= 1");
        self.oversubscription = ratio;
        self
    }

    /// The pod count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of switches (`5k^2/4`).
    pub fn num_switches(&self) -> usize {
        5 * self.k * self.k / 4
    }

    /// Pod containing host `h`.
    fn pod_of(&self, h: usize) -> usize {
        h / (self.half_k * self.half_k)
    }

    /// Edge switch (within its pod) serving host `h`.
    fn edge_of(&self, h: usize) -> usize {
        (h % (self.half_k * self.half_k)) / self.half_k
    }

    /// Global edge-switch index serving host `h`.
    fn global_edge_of(&self, h: usize) -> usize {
        self.pod_of(h) * self.half_k + self.edge_of(h)
    }

    // Link-id layout (H = num_hosts, hk = k/2):
    //   [0,    H)  host h -> its edge switch
    //   [H,   2H)  edge switch -> host h
    //   [2H,  3H)  edge(p,e) -> agg(p,a)   index p*hk^2 + e*hk + a
    //   [3H,  4H)  agg(p,a) -> edge(p,e)   index p*hk^2 + e*hk + a
    //   [4H,  5H)  agg(p,a) -> core(a,c)   index p*hk^2 + a*hk + c
    //   [5H,  6H)  core(a,c) -> agg(p,a)   index p*hk^2 + a*hk + c
    fn link_host_up(&self, h: usize) -> LinkId {
        LinkId(h)
    }
    fn link_host_down(&self, h: usize) -> LinkId {
        LinkId(self.num_hosts + h)
    }
    fn link_edge_to_agg(&self, pod: usize, edge: usize, agg: usize) -> LinkId {
        LinkId(2 * self.num_hosts + pod * self.half_k * self.half_k + edge * self.half_k + agg)
    }
    fn link_agg_to_edge(&self, pod: usize, edge: usize, agg: usize) -> LinkId {
        LinkId(3 * self.num_hosts + pod * self.half_k * self.half_k + edge * self.half_k + agg)
    }
    fn link_agg_to_core(&self, pod: usize, agg: usize, core: usize) -> LinkId {
        LinkId(4 * self.num_hosts + pod * self.half_k * self.half_k + agg * self.half_k + core)
    }
    fn link_core_to_agg(&self, pod: usize, agg: usize, core: usize) -> LinkId {
        LinkId(5 * self.num_hosts + pod * self.half_k * self.half_k + agg * self.half_k + core)
    }

    fn check_host(&self, h: HostId) -> Result<usize, SimError> {
        if h.index() >= self.num_hosts {
            Err(SimError::UnknownHost {
                host: h.index(),
                num_hosts: self.num_hosts,
            })
        } else {
            Ok(h.index())
        }
    }

    /// Routes `src → dst` into `buf` and returns the hop count (0, 2, 4
    /// or 6). Shared by the allocating [`Fabric::path`] and the interned
    /// [`Fabric::path_ref`] so both always agree.
    fn fill_path(
        &self,
        src: HostId,
        dst: HostId,
        salt: u64,
        buf: &mut [LinkId; 6],
    ) -> Result<usize, SimError> {
        let s = self.check_host(src)?;
        let d = self.check_host(dst)?;
        if s == d {
            return Ok(0);
        }
        let (sp, se) = (self.pod_of(s), self.edge_of(s));
        let (dp, de) = (self.pod_of(d), self.edge_of(d));
        if self.global_edge_of(s) == self.global_edge_of(d) {
            // Same edge switch: up and straight back down.
            buf[0] = self.link_host_up(s);
            buf[1] = self.link_host_down(d);
            return Ok(2);
        }
        let h = mix64((s as u64) ^ (d as u64).rotate_left(21) ^ salt.rotate_left(42));
        let agg = (h % self.half_k as u64) as usize;
        if sp == dp {
            // Intra-pod: bounce off one aggregation switch.
            buf[0] = self.link_host_up(s);
            buf[1] = self.link_edge_to_agg(sp, se, agg);
            buf[2] = self.link_agg_to_edge(sp, de, agg);
            buf[3] = self.link_host_down(d);
            return Ok(4);
        }
        let core = ((h / self.half_k as u64) % self.half_k as u64) as usize;
        buf[0] = self.link_host_up(s);
        buf[1] = self.link_edge_to_agg(sp, se, agg);
        buf[2] = self.link_agg_to_core(sp, agg, core);
        buf[3] = self.link_core_to_agg(dp, agg, core);
        buf[4] = self.link_agg_to_edge(dp, de, agg);
        buf[5] = self.link_host_down(d);
        Ok(6)
    }
}

impl Fabric for FatTree {
    fn num_hosts(&self) -> usize {
        self.num_hosts
    }

    fn num_links(&self) -> usize {
        6 * self.num_hosts
    }

    fn link_capacity(&self, l: LinkId) -> f64 {
        assert!(l.index() < self.num_links(), "link out of range");
        if l.index() < 2 * self.num_hosts {
            self.capacity // host<->edge: full line rate
        } else {
            self.capacity / self.oversubscription
        }
    }

    fn path(&self, src: HostId, dst: HostId, salt: u64) -> Result<Vec<LinkId>, SimError> {
        let mut buf = [LinkId(0); 6];
        let n = self.fill_path(src, dst, salt, &mut buf)?;
        Ok(buf[..n].to_vec())
    }

    fn path_ref(
        &self,
        src: HostId,
        dst: HostId,
        salt: u64,
        arena: &mut PathArena,
    ) -> Result<PathRef, SimError> {
        let mut buf = [LinkId(0); 6];
        let n = self.fill_path(src, dst, salt, &mut buf)?;
        Ok(arena.intern(&buf[..n]))
    }
}

/// The non-blocking big-switch abstraction: every host connects to one
/// giant crossbar, so a flow only traverses its sender's uplink and its
/// receiver's downlink. Contention happens exclusively at host NICs.
///
/// # Example
///
/// ```
/// use gurita_model::HostId;
/// use gurita_sim::topology::{BigSwitch, Fabric};
/// let fabric = BigSwitch::new(4, 1.0e9);
/// let path = fabric.path(HostId(0), HostId(3), 0)?;
/// assert_eq!(path.len(), 2); // uplink + downlink
/// # Ok::<(), gurita_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BigSwitch {
    num_hosts: usize,
    capacity: f64,
}

impl BigSwitch {
    /// Creates a big switch connecting `num_hosts` hosts with per-NIC
    /// capacity `capacity` bytes per second.
    pub fn new(num_hosts: usize, capacity: f64) -> Self {
        Self {
            num_hosts,
            capacity,
        }
    }
}

impl Fabric for BigSwitch {
    fn num_hosts(&self) -> usize {
        self.num_hosts
    }

    fn num_links(&self) -> usize {
        2 * self.num_hosts
    }

    fn link_capacity(&self, l: LinkId) -> f64 {
        assert!(l.index() < self.num_links(), "link out of range");
        self.capacity
    }

    fn path(&self, src: HostId, dst: HostId, _salt: u64) -> Result<Vec<LinkId>, SimError> {
        for h in [src, dst] {
            if h.index() >= self.num_hosts {
                return Err(SimError::UnknownHost {
                    host: h.index(),
                    num_hosts: self.num_hosts,
                });
            }
        }
        if src == dst {
            return Ok(Vec::new());
        }
        // Uplink of src is link src; downlink of dst is num_hosts + dst.
        Ok(vec![
            LinkId(src.index()),
            LinkId(self.num_hosts + dst.index()),
        ])
    }

    fn path_ref(
        &self,
        src: HostId,
        dst: HostId,
        _salt: u64,
        arena: &mut PathArena,
    ) -> Result<PathRef, SimError> {
        for h in [src, dst] {
            if h.index() >= self.num_hosts {
                return Err(SimError::UnknownHost {
                    host: h.index(),
                    num_hosts: self.num_hosts,
                });
            }
        }
        if src == dst {
            return Ok(arena.intern(&[]));
        }
        Ok(arena.intern(&[LinkId(src.index()), LinkId(self.num_hosts + dst.index())]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_pod_counts() {
        assert!(FatTree::new(0).is_err());
        assert!(FatTree::new(3).is_err());
        assert!(FatTree::new(2).is_ok());
    }

    #[test]
    fn paper_scale_counts() {
        let f8 = FatTree::new(8).unwrap();
        assert_eq!(f8.num_hosts(), 128);
        assert_eq!(f8.num_switches(), 80);
        let f48 = FatTree::new(48).unwrap();
        assert_eq!(f48.num_hosts(), 27_648);
        assert_eq!(f48.num_switches(), 2_880);
    }

    #[test]
    fn oversubscription_trims_upper_layers_only() {
        let f = FatTree::new(4).unwrap().with_oversubscription(4.0);
        let h = f.num_hosts();
        assert_eq!(f.link_capacity(LinkId(0)), units::GBPS_10);
        assert_eq!(f.link_capacity(LinkId(h)), units::GBPS_10);
        assert_eq!(f.link_capacity(LinkId(2 * h)), units::GBPS_10 / 4.0);
        assert_eq!(f.link_capacity(LinkId(5 * h)), units::GBPS_10 / 4.0);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn rejects_sub_unity_oversubscription() {
        let _ = FatTree::new(4).unwrap().with_oversubscription(0.5);
    }

    #[test]
    fn default_capacity_is_10g() {
        let f = FatTree::new(4).unwrap();
        assert_eq!(f.link_capacity(LinkId(0)), units::GBPS_10);
    }

    #[test]
    fn path_lengths_by_locality() {
        let f = FatTree::new(4).unwrap();
        // k=4: 16 hosts, 2 hosts per edge, pods of 4 hosts.
        assert!(f.path(HostId(0), HostId(0), 1).unwrap().is_empty());
        assert_eq!(f.path(HostId(0), HostId(1), 1).unwrap().len(), 2); // same edge
        assert_eq!(f.path(HostId(0), HostId(2), 1).unwrap().len(), 4); // same pod
        assert_eq!(f.path(HostId(0), HostId(5), 1).unwrap().len(), 6); // cross pod
    }

    #[test]
    fn paths_are_deterministic_and_salt_sensitive() {
        let f = FatTree::new(8).unwrap();
        let p1 = f.path(HostId(0), HostId(100), 7).unwrap();
        let p2 = f.path(HostId(0), HostId(100), 7).unwrap();
        assert_eq!(p1, p2);
        // Different salts should eventually pick a different path.
        let distinct: std::collections::HashSet<Vec<LinkId>> = (0..64)
            .map(|s| f.path(HostId(0), HostId(100), s).unwrap())
            .collect();
        assert!(distinct.len() > 1, "ECMP should spread across paths");
    }

    #[test]
    fn all_path_links_in_range() {
        let f = FatTree::new(4).unwrap();
        for s in 0..f.num_hosts() {
            for d in 0..f.num_hosts() {
                for salt in [0u64, 9, 1234] {
                    let p = f.path(HostId(s), HostId(d), salt).unwrap();
                    for l in &p {
                        assert!(l.index() < f.num_links());
                    }
                    // Path endpoints: first link is src uplink, last is dst downlink.
                    if !p.is_empty() {
                        assert_eq!(p[0], LinkId(s));
                        assert_eq!(*p.last().unwrap(), LinkId(f.num_hosts() + d));
                    }
                }
            }
        }
    }

    #[test]
    fn cross_pod_path_uses_consistent_core_wiring() {
        let f = FatTree::new(8).unwrap();
        // For any cross-pod path, the agg->core and core->agg links must
        // reference the same (agg, core) pair on both sides.
        for salt in 0..32u64 {
            let p = f.path(HostId(0), HostId(127), salt).unwrap();
            assert_eq!(p.len(), 6);
            let h = f.num_hosts();
            let up_core = p[2].index() - 4 * h;
            let down_core = p[3].index() - 5 * h;
            let hk2 = f.half_k * f.half_k;
            assert_eq!(up_core % hk2, down_core % hk2);
        }
    }

    #[test]
    fn unknown_host_is_rejected() {
        let f = FatTree::new(4).unwrap();
        assert!(matches!(
            f.path(HostId(0), HostId(99), 0),
            Err(SimError::UnknownHost { host: 99, .. })
        ));
        let b = BigSwitch::new(4, 1.0);
        assert!(b.path(HostId(4), HostId(0), 0).is_err());
    }

    #[test]
    fn big_switch_paths() {
        let b = BigSwitch::new(8, 2.0);
        assert!(b.path(HostId(1), HostId(1), 0).unwrap().is_empty());
        let p = b.path(HostId(1), HostId(6), 0).unwrap();
        assert_eq!(p, vec![LinkId(1), LinkId(14)]);
        assert_eq!(b.num_links(), 16);
        assert_eq!(b.link_capacity(LinkId(3)), 2.0);
    }

    #[test]
    fn mix64_spreads_bits() {
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        assert_ne!(a & 0xffff, b & 0xffff);
    }

    #[test]
    fn arena_dedups_identical_paths() {
        let mut arena = PathArena::new();
        let a = arena.intern(&[LinkId(1), LinkId(2)]);
        let b = arena.intern(&[LinkId(1), LinkId(2)]);
        let c = arena.intern(&[LinkId(2), LinkId(1)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(arena.unique_paths(), 2);
        assert_eq!(arena.interns(), 3);
        assert!((arena.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(arena.get(a), &[LinkId(1), LinkId(2)]);
        assert_eq!(arena.resolve(c.id()), &[LinkId(2), LinkId(1)]);
        assert!(arena.storage_bytes() > 0);
    }

    #[test]
    fn arena_interns_empty_paths() {
        let mut arena = PathArena::new();
        let e1 = arena.intern(&[]);
        let e2 = arena.intern(&[]);
        assert_eq!(e1, e2);
        assert!(e1.is_empty());
        assert_eq!(e1.len(), 0);
        assert!(arena.get(e1).is_empty());
    }

    #[test]
    fn fat_tree_path_ref_matches_path() {
        let f = FatTree::new(4).unwrap();
        let mut arena = PathArena::new();
        for s in 0..f.num_hosts() {
            for d in 0..f.num_hosts() {
                for salt in [0u64, 7, 4242] {
                    let owned = f.path(HostId(s), HostId(d), salt).unwrap();
                    let r = f.path_ref(HostId(s), HostId(d), salt, &mut arena).unwrap();
                    assert_eq!(arena.get(r), owned.as_slice());
                    assert_eq!(r.len(), owned.len());
                }
            }
        }
        // Far fewer distinct paths than (src, dst, salt) triples.
        assert!(arena.unique_paths() < 3 * f.num_hosts() * f.num_hosts());
        assert!(arena.hit_rate() > 0.0);
    }

    #[test]
    fn big_switch_path_ref_matches_path() {
        let b = BigSwitch::new(6, 1.0);
        let mut arena = PathArena::new();
        for s in 0..6 {
            for d in 0..6 {
                let owned = b.path(HostId(s), HostId(d), 3).unwrap();
                let r = b.path_ref(HostId(s), HostId(d), 3, &mut arena).unwrap();
                assert_eq!(arena.get(r), owned.as_slice());
            }
        }
        assert!(b.path_ref(HostId(0), HostId(9), 0, &mut arena).is_err());
    }
}
