//! A bucketed calendar queue (Brown, CACM 1988) for the event loop.
//!
//! The simulator's pending events are spread over `nbuckets` buckets by
//! the *virtual window* of their timestamp, `window(t) = ⌊t / width⌋`:
//! window `w` maps to bucket `w % nbuckets`, and a cursor walks the
//! windows in order. Pushes insert into one short sorted bucket and pops
//! take the tail of the cursor's bucket, so both are O(1) amortized —
//! versus `O(log n)` for a binary heap — while preserving the exact
//! `(time, seq)` total order the heap produces: within a window all
//! events share one bucket and are kept sorted, and windows are visited
//! in order. The queue grows (doubling the bucket count and
//! re-estimating the window width from the live event span) when
//! occupancy exceeds two events per bucket.
//!
//! Determinism: `window` is a pure function of the timestamp and the
//! current width, both identical across runs, so bucket placement and
//! pop order are reproducible. Pop order is *bit-for-bit* the order a
//! `BinaryHeap<Event>` min-heap on `(time, seq)` yields, which the
//! `event_queue_equivalence` property test pins down against
//! [`crate::runtime::SimConfig::force_binary_heap_events`].
//!
//! Completion events are timestamped `now + remaining / rate` from the
//! engine's hot struct-of-arrays flow block (`FlowHot`), recomputed at
//! schedule time from current state; the queue itself is agnostic to
//! where those reads come from — identical timestamps in, identical
//! pop order out, at any `threads` setting.

use crate::runtime::Event;

/// Initial bucket count; doubled whenever `len > 2 * nbuckets`.
const INITIAL_BUCKETS: usize = 16;
/// Initial window width in seconds, replaced by a span-derived estimate
/// at the first resize.
const INITIAL_WIDTH: f64 = 1e-3;

/// O(1)-amortized event queue; see the module docs.
#[derive(Debug)]
pub(crate) struct CalendarQueue {
    /// Each bucket is sorted *descending* by `(time, seq)` so the bucket
    /// minimum pops from the tail in O(1).
    buckets: Vec<Vec<Event>>,
    len: usize,
    width: f64,
    /// Next virtual window to visit. Invariant: no stored event has
    /// `window(time) < cursor`.
    cursor: u64,
}

impl CalendarQueue {
    pub(crate) fn new() -> Self {
        Self {
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            len: 0,
            width: INITIAL_WIDTH,
            cursor: 0,
        }
    }

    /// Pending events (O(1); sampled into telemetry epoch records).
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Virtual window of timestamp `t` under the current width. The cast
    /// saturates for huge quotients, which only merges far-future events
    /// into one window — ordering within a window is still exact.
    fn window(&self, t: f64) -> u64 {
        (t / self.width) as u64
    }

    pub(crate) fn push(&mut self, ev: Event) {
        let w = self.window(ev.time);
        if self.len == 0 {
            self.cursor = w;
        } else {
            self.cursor = self.cursor.min(w);
        }
        let n = self.buckets.len();
        let bucket = &mut self.buckets[(w % n as u64) as usize];
        // Descending insert position: everything strictly greater stays
        // in front of the new event.
        let at = bucket.partition_point(|e| (e.time, e.seq) > (ev.time, ev.seq));
        bucket.insert(at, ev);
        self.len += 1;
        if self.len > 2 * n {
            self.resize(2 * n);
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Event> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        // Walk windows from the cursor; all events of window `w` live in
        // bucket `w % n`, sorted, so the tail either belongs to the
        // current window (it is then the global minimum) or the window is
        // empty and the cursor may advance.
        for _ in 0..n {
            let b = (self.cursor % n as u64) as usize;
            if let Some(tail) = self.buckets[b].last() {
                if self.window(tail.time) == self.cursor {
                    self.len -= 1;
                    return self.buckets[b].pop();
                }
            }
            self.cursor += 1;
        }
        // A full lap hit nothing: the next event is more than `n` windows
        // away (sparse tail, e.g. a far-future recovery). Find the global
        // minimum directly among the bucket tails and jump the cursor.
        let b = (0..n)
            .filter(|&b| !self.buckets[b].is_empty())
            .min_by(|&a, &b| {
                let ea = self.buckets[a].last().expect("non-empty");
                let eb = self.buckets[b].last().expect("non-empty");
                (ea.time, ea.seq)
                    .partial_cmp(&(eb.time, eb.seq))
                    .expect("event times are finite")
            })
            .expect("len > 0 means some bucket is non-empty");
        let ev = self.buckets[b].pop().expect("chosen bucket is non-empty");
        self.cursor = self.window(ev.time);
        self.len -= 1;
        Some(ev)
    }

    /// Timestamp of the event [`CalendarQueue::pop`] would return next,
    /// without removing it. Walks windows exactly like `pop`; the only
    /// mutation is the cursor, which `pop` would advance identically (a
    /// sparse-tail miss jumps the cursor straight to the minimum's
    /// window so the following `pop` lands on it directly).
    pub(crate) fn next_time(&mut self) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        for _ in 0..n {
            let b = (self.cursor % n as u64) as usize;
            if let Some(tail) = self.buckets[b].last() {
                if self.window(tail.time) == self.cursor {
                    return Some(tail.time);
                }
            }
            self.cursor += 1;
        }
        let b = (0..n)
            .filter(|&b| !self.buckets[b].is_empty())
            .min_by(|&a, &b| {
                let ea = self.buckets[a].last().expect("non-empty");
                let eb = self.buckets[b].last().expect("non-empty");
                (ea.time, ea.seq)
                    .partial_cmp(&(eb.time, eb.seq))
                    .expect("event times are finite")
            })
            .expect("len > 0 means some bucket is non-empty");
        let tail = self.buckets[b].last().expect("chosen bucket is non-empty");
        self.cursor = self.window(tail.time);
        Some(tail.time)
    }

    /// Whether any pending event satisfies `f` (used by the stranded-flow
    /// check, mirroring `BinaryHeap::iter().any`).
    pub(crate) fn any(&self, f: impl FnMut(&Event) -> bool) -> bool {
        self.buckets.iter().flatten().any(f)
    }

    fn resize(&mut self, new_n: usize) {
        let events: Vec<Event> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        // Re-derive the width so a bucket covers ~half the mean event
        // spacing; keep the old width when the span is degenerate.
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for e in &events {
            lo = lo.min(e.time);
            hi = hi.max(e.time);
        }
        let est = (hi - lo) / events.len() as f64 * 2.0;
        if est.is_finite() && est > 0.0 {
            self.width = est;
        }
        self.buckets = (0..new_n).map(|_| Vec::new()).collect();
        let mut cursor = u64::MAX;
        for e in events {
            let w = self.window(e.time);
            cursor = cursor.min(w);
            self.buckets[(w % new_n as u64) as usize].push(e);
        }
        for bucket in &mut self.buckets {
            bucket.sort_unstable_by(|a, b| {
                (b.time, b.seq)
                    .partial_cmp(&(a.time, a.seq))
                    .expect("event times are finite")
            });
        }
        self.cursor = cursor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::EventKind;
    use std::collections::BinaryHeap;

    fn ev(time: f64, seq: u64) -> Event {
        Event {
            time,
            seq,
            kind: EventKind::Tick,
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        for (t, s) in [(3.0, 0), (1.0, 1), (2.0, 2), (1.0, 3), (0.5, 4)] {
            q.push(ev(t, s));
        }
        let order: Vec<(f64, u64)> =
            std::iter::from_fn(|| q.pop().map(|e| (e.time, e.seq))).collect();
        assert_eq!(
            order,
            vec![(0.5, 4), (1.0, 1), (1.0, 3), (2.0, 2), (3.0, 0)]
        );
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn interleaved_push_pop_matches_binary_heap() {
        // Deterministic pseudo-random workload with far-future spikes and
        // monotone "now" (events push at or after the last popped time),
        // mirroring how the engine uses the queue.
        let mut q = CalendarQueue::new();
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut state = 7u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut now = 0.0f64;
        for round in 0..2000u64 {
            let spike = if round % 97 == 0 { 1e6 } else { 0.0 };
            let t = now + next() * 2.0 + spike;
            q.push(ev(t, round));
            heap.push(ev(t, round));
            if round % 3 != 0 {
                let a = q.pop().expect("same length");
                let b = heap.pop().expect("same length");
                assert_eq!((a.time, a.seq), (b.time, b.seq), "round {round}");
                now = if spike == 0.0 { a.time } else { now };
            }
        }
        while let Some(b) = heap.pop() {
            let a = q.pop().expect("same length");
            assert_eq!((a.time, a.seq), (b.time, b.seq));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn next_time_previews_pop_without_consuming() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.next_time(), None);
        // Includes a sparse far-future tail to exercise the full-lap
        // fallback path of the window walk.
        for (t, s) in [(3.0, 0), (0.5, 1), (1e6, 2), (0.5, 3)] {
            q.push(ev(t, s));
        }
        while q.len() > 0 {
            let t = q.next_time().expect("non-empty");
            let popped = q.pop().expect("non-empty");
            assert_eq!(t, popped.time);
        }
        assert_eq!(q.next_time(), None);
    }

    #[test]
    fn any_sees_all_pending_events() {
        let mut q = CalendarQueue::new();
        for s in 0..50 {
            q.push(ev(s as f64 * 0.1, s));
        }
        assert!(q.any(|e| e.seq == 49));
        assert!(!q.any(|e| e.seq == 50));
    }

    #[test]
    fn resize_preserves_order_across_growth() {
        let mut q = CalendarQueue::new();
        // Push far more than 2 * INITIAL_BUCKETS to force several resizes.
        for s in 0..500u64 {
            q.push(ev(((s * 7919) % 1000) as f64 * 0.01, s));
        }
        let mut last = (f64::NEG_INFINITY, 0u64);
        let mut count = 0;
        while let Some(e) = q.pop() {
            assert!(
                (e.time, e.seq) > last,
                "order violated at {:?}",
                (e.time, e.seq)
            );
            last = (e.time, e.seq);
            count += 1;
        }
        assert_eq!(count, 500);
    }
}
