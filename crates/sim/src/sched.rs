//! Scheduler interface.
//!
//! A coflow scheduler plugs into the simulation through [`Scheduler`].
//! After every event batch (arrivals, completions, periodic δ ticks —
//! the paper's receiver-to-head-receiver update interval) the runtime
//! presents an [`Observation`] and asks for a queue assignment per active
//! coflow.
//!
//! # Information model
//!
//! The [`Observation`] carries only what a *decentralized, receiver-side*
//! scheme can see in a real deployment (paper §IV.B "from concept to
//! practice"):
//!
//! * per-flow bytes received and open-connection status — visible at the
//!   receiver's NetFilter shim;
//! * per-coflow aggregates (open-connection count ≈ width Ŵ, largest
//!   observed flow ≈ L̂_max, bytes received) — aggregated at the head
//!   receiver from its peers;
//! * the coflow's depth in its job's dependency chain (`dag_stage`) and
//!   how many of the job's coflows have completed — receivers learn the
//!   dependency chain because parents invoke children and inform them of
//!   the head receiver.
//!
//! Clairvoyant/centralized schemes (the paper's Aalo setup and
//! GuritaPlus) additionally read the [`Oracle`], which exposes full job
//! specifications and exact per-flow remaining bytes. Decentralized
//! schedulers must not touch it; the split makes each scheme's
//! information usage explicit and auditable.

use gurita_model::{CoflowId, FlowId, JobId, JobSpec};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Receiver-side view of one flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowObs {
    /// The flow's identifier.
    pub id: FlowId,
    /// Bytes received so far.
    pub bytes_received: f64,
    /// Whether the connection is still open (the flow is active).
    pub open: bool,
}

/// Receiver-side view of one active coflow.
#[derive(Debug, Clone)]
pub struct CoflowObs {
    /// The coflow's identifier.
    pub id: CoflowId,
    /// The job the coflow belongs to.
    pub job: JobId,
    /// The coflow's vertex index within its job's DAG.
    pub dag_vertex: usize,
    /// Depth of the coflow in its dependency chain (0 = leaf). Receivers
    /// observe this by counting parent→child invocations; it equals the
    /// number of completed predecessor stages `s` in the blocking-effect
    /// estimate ω̂ = 1/(1+s).
    pub dag_stage: usize,
    /// Simulation time at which the coflow was activated.
    pub activated_at: f64,
    /// Number of currently open connections (the width estimate Ŵ).
    pub open_flows: usize,
    /// Total bytes received across all of the coflow's flows.
    pub bytes_received: f64,
    /// Largest per-flow bytes received observed so far (L̂_max).
    pub max_flow_bytes_received: f64,
    /// Per-flow observations.
    pub flows: Vec<FlowObs>,
}

impl CoflowObs {
    /// Mean bytes received per started flow (L̂_avg); 0 if no flows.
    pub fn avg_flow_bytes_received(&self) -> f64 {
        if self.flows.is_empty() {
            0.0
        } else {
            self.bytes_received / self.flows.len() as f64
        }
    }
}

/// Receiver-side view of one job with at least one active coflow.
#[derive(Debug, Clone)]
pub struct JobObs {
    /// The job's identifier.
    pub id: JobId,
    /// Arrival time of the job.
    pub arrival: f64,
    /// Number of the job's coflows that have completed so far.
    pub completed_coflows: usize,
    /// Highest DAG stage among completed coflows plus one; 0 if none —
    /// the "number of completed stages" the head receiver can count.
    pub completed_stages: usize,
    /// Total bytes received by the job so far, across all its coflows
    /// (the accumulated total-bytes-sent that TBS schedulers use).
    pub bytes_received: f64,
    /// Bytes received by the job's already-completed coflows — the part
    /// of [`JobObs::bytes_received`] not attributable to the active
    /// coflows. Exposed so partial (per-host) views can be re-merged
    /// into a cluster-wide view without double counting.
    pub completed_bytes: f64,
    /// Indexes into [`Observation::coflows`] of this job's active coflows.
    pub active_coflows: Vec<usize>,
}

/// Everything a scheduler may observe at a decision point.
#[derive(Debug, Clone, Default)]
pub struct Observation {
    /// Current simulation time.
    pub now: f64,
    /// All active coflows, in ascending [`CoflowId`] order.
    pub coflows: Vec<CoflowObs>,
    /// All jobs with at least one active coflow, in ascending [`JobId`]
    /// order (an invariant of the runtime's observation builders that
    /// [`Observation::job`] relies on).
    pub jobs: Vec<JobObs>,
}

impl Observation {
    /// Looks up a job observation by id.
    ///
    /// Binary-searches `jobs`, which the runtime keeps sorted by id; a
    /// hand-built observation with unsorted jobs may miss entries.
    pub fn job(&self, id: JobId) -> Option<&JobObs> {
        self.jobs
            .binary_search_by(|j| j.id.cmp(&id))
            .ok()
            .map(|i| &self.jobs[i])
    }
}

/// Clairvoyant side channel for centralized / idealized schedulers.
///
/// The paper grants Aalo "information on job … available instantaneously
/// to the centralized controller" and GuritaPlus "the total amount of
/// bytes sent per stage … \[and\] in-flight bytes". Decentralized schemes
/// must ignore this.
pub struct Oracle<'a> {
    pub(crate) jobs: &'a HashMap<JobId, JobSpec>,
    pub(crate) remaining: &'a dyn Fn(FlowId) -> Option<f64>,
    pub(crate) flow_size: &'a dyn Fn(FlowId) -> Option<f64>,
    /// Panic on any access (see [`Oracle::deny`]).
    pub(crate) deny: bool,
}

impl std::fmt::Debug for Oracle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Oracle")
            .field("jobs", &self.jobs.len())
            .finish_non_exhaustive()
    }
}

impl<'a> Oracle<'a> {
    /// Assembles an oracle from its parts. The runtime builds one per
    /// decision point; exposed publicly so external schedulers can be
    /// unit-tested against hand-built oracles.
    pub fn new(
        jobs: &'a HashMap<JobId, JobSpec>,
        remaining: &'a dyn Fn(FlowId) -> Option<f64>,
        flow_size: &'a dyn Fn(FlowId) -> Option<f64>,
    ) -> Self {
        Self {
            jobs,
            remaining,
            flow_size,
            deny: false,
        }
    }

    /// An oracle that panics on any access.
    ///
    /// The decentralized control plane hands this to host agents: a
    /// scheme that claims to run from local observations but reaches for
    /// clairvoyant state trips the panic immediately instead of silently
    /// cheating. The panic (rather than `None` answers) makes the
    /// information boundary an enforced contract, pinned by
    /// cross-scheduler tests.
    pub fn deny() -> Oracle<'static> {
        static EMPTY_JOBS: OnceLock<HashMap<JobId, JobSpec>> = OnceLock::new();
        fn no_lookup(_: FlowId) -> Option<f64> {
            None
        }
        Oracle {
            jobs: EMPTY_JOBS.get_or_init(HashMap::new),
            remaining: &no_lookup,
            flow_size: &no_lookup,
            deny: true,
        }
    }

    /// Whether this oracle denies all access (see [`Oracle::deny`]).
    pub fn is_denied(&self) -> bool {
        self.deny
    }

    #[track_caller]
    fn check_access(&self) {
        assert!(
            !self.deny,
            "oracle access denied: decentralized schedulers must decide \
             from local observations only"
        );
    }

    /// Full specification of a job (its DAG, coflows, and exact flow
    /// sizes).
    pub fn job_spec(&self, id: JobId) -> Option<&'a JobSpec> {
        self.check_access();
        self.jobs.get(&id)
    }

    /// Exact remaining (in-flight-unsent) bytes of an active flow.
    pub fn remaining_bytes(&self, id: FlowId) -> Option<f64> {
        self.check_access();
        (self.remaining)(id)
    }

    /// Exact total size of a flow.
    pub fn flow_size(&self, id: FlowId) -> Option<f64> {
        self.check_access();
        (self.flow_size)(id)
    }
}

/// Queue assignment for the active coflows: `assignment[i]` is the queue
/// of `observation.coflows[i]`. Queue 0 is the highest priority.
pub type Assignment = Vec<usize>;

/// How the network serves the scheduler's queues.
#[derive(Debug, Clone, PartialEq)]
pub enum QueuePolicy {
    /// Strict priority queuing.
    Strict,
    /// WRR emulation of SPQ with explicit per-queue weights
    /// (len == number of queues, all positive).
    Weighted(Vec<f64>),
}

/// A coflow scheduler.
///
/// Implementations decide, at every event batch, which priority queue
/// each active coflow's traffic should use. The runtime enforces the
/// paper's TCP-reordering rule for decentralized schedulers: a live
/// flow's priority may be *lowered* immediately, but a raise only applies
/// to flows started afterwards (override
/// [`Scheduler::reprioritizes_live_flows`] to lift this, as the
/// centralized/idealized schemes do).
pub trait Scheduler {
    /// Display name of the scheduler (used in result tables).
    fn name(&self) -> String;

    /// Number of priority queues the scheduler uses. Commodity switches
    /// support 8; the paper's evaluation uses 4.
    fn num_queues(&self) -> usize;

    /// Produces a queue per active coflow.
    fn assign(&mut self, obs: &Observation, oracle: &Oracle<'_>) -> Assignment;

    /// Whether live flows may be re-prioritized in both directions
    /// (centralized / idealized schemes). Defaults to `false`.
    fn reprioritizes_live_flows(&self) -> bool {
        false
    }

    /// The service policy for this scheduler's queues. Defaults to strict
    /// priority. Gurita's starvation mitigation returns
    /// [`QueuePolicy::Weighted`] with waiting-time-derived weights.
    ///
    /// # Contract
    ///
    /// The runtime calls this once per rate recomputation, *after*
    /// [`Scheduler::assign`] for the same decision point — and passes
    /// `Observation::default()`, i.e. an **empty** observation (building
    /// a real one on the hot path would cost `O(flows)` per event).
    /// Implementations MUST NOT read `obs` here: derive weights from
    /// state accumulated during `assign`. Equivalently, the returned
    /// policy must be identical for any two observations between the
    /// same pair of `assign` calls (pinned by a roster-wide test in the
    /// experiments crate).
    fn queue_policy(&mut self, obs: &Observation) -> QueuePolicy {
        let _ = obs;
        QueuePolicy::Strict
    }

    /// Notifies the scheduler that a coflow completed (so it can retire
    /// per-coflow state).
    fn on_coflow_completed(&mut self, coflow: CoflowId, job: JobId, now: f64) {
        let _ = (coflow, job, now);
    }

    /// Notifies the scheduler that a job completed.
    fn on_job_completed(&mut self, job: JobId, now: f64) {
        let _ = (job, now);
    }
}

impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn name(&self) -> String {
        (**self).name()
    }
    fn num_queues(&self) -> usize {
        (**self).num_queues()
    }
    fn assign(&mut self, obs: &Observation, oracle: &Oracle<'_>) -> Assignment {
        (**self).assign(obs, oracle)
    }
    fn reprioritizes_live_flows(&self) -> bool {
        (**self).reprioritizes_live_flows()
    }
    fn queue_policy(&mut self, obs: &Observation) -> QueuePolicy {
        (**self).queue_policy(obs)
    }
    fn on_coflow_completed(&mut self, coflow: CoflowId, job: JobId, now: f64) {
        (**self).on_coflow_completed(coflow, job, now)
    }
    fn on_job_completed(&mut self, job: JobId, now: f64) {
        (**self).on_job_completed(job, now)
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn num_queues(&self) -> usize {
        (**self).num_queues()
    }
    fn assign(&mut self, obs: &Observation, oracle: &Oracle<'_>) -> Assignment {
        (**self).assign(obs, oracle)
    }
    fn reprioritizes_live_flows(&self) -> bool {
        (**self).reprioritizes_live_flows()
    }
    fn queue_policy(&mut self, obs: &Observation) -> QueuePolicy {
        (**self).queue_policy(obs)
    }
    fn on_coflow_completed(&mut self, coflow: CoflowId, job: JobId, now: f64) {
        (**self).on_coflow_completed(coflow, job, now)
    }
    fn on_job_completed(&mut self, job: JobId, now: f64) {
        (**self).on_job_completed(job, now)
    }
}

/// A trivial scheduler that places every coflow in one queue in FIFO
/// spirit — with a single queue this degenerates to per-flow fair sharing
/// and serves as the simulator's smoke-test scheduler.
#[derive(Debug, Clone)]
pub struct FifoScheduler {
    queues: usize,
}

impl FifoScheduler {
    /// Creates the scheduler with `queues` priority queues (all coflows
    /// are placed in queue 0).
    pub fn new(queues: usize) -> Self {
        assert!(queues >= 1, "at least one queue required");
        Self { queues }
    }
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> String {
        "fifo".to_owned()
    }

    fn num_queues(&self) -> usize {
        self.queues
    }

    fn assign(&mut self, obs: &Observation, _oracle: &Oracle<'_>) -> Assignment {
        vec![0; obs.coflows.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_assigns_queue_zero() {
        let mut s = FifoScheduler::new(4);
        let obs = Observation {
            now: 0.0,
            coflows: vec![
                CoflowObs {
                    id: CoflowId(0),
                    job: JobId(0),
                    dag_vertex: 0,
                    dag_stage: 0,
                    activated_at: 0.0,
                    open_flows: 1,
                    bytes_received: 0.0,
                    max_flow_bytes_received: 0.0,
                    flows: vec![],
                };
                3
            ],
            jobs: vec![],
        };
        let jobs = HashMap::new();
        let rem = |_| None;
        let size = |_| None;
        let oracle = Oracle::new(&jobs, &rem, &size);
        assert_eq!(s.assign(&obs, &oracle), vec![0, 0, 0]);
        assert_eq!(s.queue_policy(&obs), QueuePolicy::Strict);
        assert!(!s.reprioritizes_live_flows());
    }

    #[test]
    fn coflow_obs_average() {
        let c = CoflowObs {
            id: CoflowId(0),
            job: JobId(0),
            dag_vertex: 0,
            dag_stage: 0,
            activated_at: 0.0,
            open_flows: 2,
            bytes_received: 10.0,
            max_flow_bytes_received: 8.0,
            flows: vec![
                FlowObs {
                    id: FlowId(0),
                    bytes_received: 8.0,
                    open: true,
                },
                FlowObs {
                    id: FlowId(1),
                    bytes_received: 2.0,
                    open: true,
                },
            ],
        };
        assert_eq!(c.avg_flow_bytes_received(), 5.0);
    }

    #[test]
    #[should_panic(expected = "at least one queue")]
    fn fifo_requires_a_queue() {
        let _ = FifoScheduler::new(0);
    }

    fn job_obs(id: usize) -> JobObs {
        JobObs {
            id: JobId(id),
            arrival: 0.0,
            completed_coflows: 0,
            completed_stages: 0,
            bytes_received: 0.0,
            completed_bytes: 0.0,
            active_coflows: vec![],
        }
    }

    #[test]
    fn job_lookup_binary_searches_sorted_jobs() {
        let obs = Observation {
            now: 0.0,
            coflows: vec![],
            jobs: vec![job_obs(1), job_obs(4), job_obs(9), job_obs(12)],
        };
        for id in [1, 4, 9, 12] {
            assert_eq!(obs.job(JobId(id)).map(|j| j.id), Some(JobId(id)));
        }
        for id in [0, 2, 8, 13] {
            assert!(obs.job(JobId(id)).is_none());
        }
        assert!(Observation::default().job(JobId(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "oracle access denied")]
    fn deny_oracle_panics_on_flow_size() {
        let _ = Oracle::deny().flow_size(FlowId(0));
    }

    #[test]
    #[should_panic(expected = "oracle access denied")]
    fn deny_oracle_panics_on_remaining_bytes() {
        let _ = Oracle::deny().remaining_bytes(FlowId(0));
    }

    #[test]
    #[should_panic(expected = "oracle access denied")]
    fn deny_oracle_panics_on_job_spec() {
        let _ = Oracle::deny().job_spec(JobId(0));
    }

    #[test]
    fn deny_oracle_reports_itself() {
        assert!(Oracle::deny().is_denied());
        let jobs = HashMap::new();
        let rem = |_| None;
        let size = |_| None;
        assert!(!Oracle::new(&jobs, &rem, &size).is_denied());
    }

    #[test]
    fn boxed_and_borrowed_schedulers_forward() {
        let boxed: Box<dyn Scheduler> = Box::new(FifoScheduler::new(4));
        assert_eq!(boxed.name(), "fifo");
        assert_eq!(boxed.num_queues(), 4);
        let mut fifo = FifoScheduler::new(2);
        let borrowed: &mut dyn Scheduler = &mut fifo;
        assert_eq!(Scheduler::name(&borrowed), "fifo");
        assert_eq!(Scheduler::num_queues(&borrowed), 2);
        assert!(!Scheduler::reprioritizes_live_flows(&borrowed));
        let obs = Observation::default();
        assert_eq!(borrowed.queue_policy(&obs), QueuePolicy::Strict);
        borrowed.on_coflow_completed(CoflowId(0), JobId(0), 0.0);
        borrowed.on_job_completed(JobId(0), 0.0);
    }
}
