//! Bridge from the telemetry stream to live metrics: a
//! [`MetricsSink`] that folds [`TraceRecord`]s into lock-free
//! `gurita-metrics` instruments as the run executes.
//!
//! The split of responsibilities mirrors the armed/disabled telemetry
//! contract (see [`crate::telemetry`]):
//!
//! * the **engine** owns the sink mutably (like any other
//!   `TelemetrySink`) and pays one trait call per lifecycle record —
//!   only when telemetry is armed;
//! * the **reader** (the daemon's serve loop, a scrape handler) holds
//!   the same instruments through the shared
//!   [`Registry`] `Arc` and can snapshot at
//!   any instant without stopping or coordinating with the run.
//!
//! The sink is purely observational: it never feeds anything back into
//! the engine, so an armed run's `RunResult` is bit-for-bit identical
//! to the disabled run (property-tested in
//! `tests/tests/telemetry.rs`).
//!
//! Series naming follows the `gurita_*` convention with base units in
//! seconds/bytes, per the Prometheus guidelines. Distributions
//! (queue-wait, JCT, CCT, CCT slowdown) are labelled by the paper's
//! seven job size categories (`category="I".."VII"`).

use crate::telemetry::{TelemetrySink, TraceRecord};
use gurita_metrics::{BucketSpec, Counter, Gauge, Histogram, Registry};
use gurita_model::SizeCategory;
use std::collections::HashMap;
use std::sync::Arc;

/// Tuning for [`MetricsSink`].
#[derive(Debug, Clone, Copy)]
pub struct MetricsConfig {
    /// Reference bandwidth in bytes/second used to turn a CCT into a
    /// slowdown factor (`cct / (bytes / ref_bandwidth)`). `0.0`
    /// disables the slowdown histogram (raw CCT is always recorded).
    /// Daemons pass the fabric's host NIC capacity.
    pub ref_bandwidth: f64,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        Self { ref_bandwidth: 0.0 }
    }
}

/// Per-category histogram family: one `Arc<Histogram>` per
/// [`SizeCategory`], indexable by category.
struct PerCategory {
    by_cat: Vec<Arc<Histogram>>,
}

impl PerCategory {
    fn register(reg: &Registry, name: &str, help: &str, spec: BucketSpec) -> Self {
        Self {
            by_cat: SizeCategory::ALL
                .iter()
                .map(|c| reg.histogram(name, help, &[("category", c.label())], spec))
                .collect(),
        }
    }

    fn observe(&self, cat: SizeCategory, v: f64) {
        self.by_cat[cat.index()].observe(v);
    }
}

/// A [`TelemetrySink`] that aggregates the lifecycle stream into live
/// Prometheus-style series registered in a shared
/// [`Registry`].
///
/// Registered families:
///
/// | family | kind | labels | source |
/// |---|---|---|---|
/// | `gurita_job_queue_wait_seconds` | histogram | `category` | arrival → first coflow activation |
/// | `gurita_jct_seconds` | histogram | `category` | [`TraceRecord::JobComplete`] |
/// | `gurita_cct_seconds` | histogram | `category` | [`TraceRecord::CoflowComplete`] |
/// | `gurita_cct_slowdown` | histogram | `category` | CCT ÷ ideal transfer time (needs `ref_bandwidth`) |
/// | `gurita_coflow_starvation_seconds` | gauge (cumulative) | — | [`TraceRecord::CoflowStarved`] |
/// | `gurita_coflow_starvation_events_total` | counter | — | idem |
/// | `gurita_jobs_completed_total`, `gurita_coflows_completed_total`, `gurita_flows_completed_total` | counter | — | lifecycle records |
/// | `gurita_priority_moves_total`, `gurita_faults_applied_total` | counter | — | idem |
/// | `gurita_control_*_total` | counter | — | PR 6 control-resilience ledger |
/// | `gurita_control_degraded_seconds`, `gurita_partition_active` | gauge | — | idem |
/// | `gurita_alloc_*`, `gurita_event_queue_depth`, `gurita_active_*` | gauge | — | [`TraceRecord::Epoch`] samples |
pub struct MetricsSink {
    cfg: MetricsConfig,
    // Distributions.
    queue_wait: PerCategory,
    jct: PerCategory,
    cct: PerCategory,
    slowdown: PerCategory,
    // Lifecycle counters.
    jobs_completed: Arc<Counter>,
    coflows_completed: Arc<Counter>,
    flows_completed: Arc<Counter>,
    priority_moves: Arc<Counter>,
    faults_applied: Arc<Counter>,
    // Starvation.
    starvation_seconds: Arc<Gauge>,
    starvation_events: Arc<Counter>,
    // Control-resilience ledger.
    control_delivered: Arc<Counter>,
    control_dropped: Arc<Counter>,
    control_deduped: Arc<Counter>,
    control_retransmits: Arc<Counter>,
    control_applied: Arc<Counter>,
    control_degraded_windows: Arc<Counter>,
    control_degraded_seconds: Arc<Gauge>,
    agent_crashes: Arc<Counter>,
    agent_restarts: Arc<Counter>,
    partitions: Arc<Counter>,
    partition_active: Arc<Gauge>,
    // Epoch-sampled engine state.
    event_queue_depth: Arc<Gauge>,
    active_flows: Arc<Gauge>,
    parked_flows: Arc<Gauge>,
    active_coflows: Arc<Gauge>,
    starved_coflows: Arc<Gauge>,
    alloc_full_passes: Arc<Gauge>,
    alloc_incremental_passes: Arc<Gauge>,
    alloc_parallel_epochs: Arc<Gauge>,
    alloc_component_flows: Arc<Gauge>,
    alloc_touched_links: Arc<Gauge>,
    alloc_waterfill_passes: Arc<Gauge>,
    // Sink-local bookkeeping (bounded: entries are removed when their
    // job/coflow completes).
    job_first_activate: HashMap<usize, f64>,
    job_bytes: HashMap<usize, f64>,
    coflow_bytes: HashMap<usize, f64>,
}

impl std::fmt::Debug for MetricsSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsSink")
            .field("ref_bandwidth", &self.cfg.ref_bandwidth)
            .field("jobs_completed", &self.jobs_completed.get())
            .field("coflows_completed", &self.coflows_completed.get())
            .finish_non_exhaustive()
    }
}

impl MetricsSink {
    /// Registers every series in `registry` and returns the sink. The
    /// caller keeps (a clone of) the registry `Arc` for snapshots; the
    /// sink holds only instrument handles.
    pub fn new(registry: &Registry, cfg: MetricsConfig) -> Self {
        let secs = BucketSpec::seconds();
        let ratio = BucketSpec::ratio();
        let c = |name: &str, help: &str| registry.counter(name, help, &[]);
        let g = |name: &str, help: &str| registry.gauge(name, help, &[]);
        Self {
            cfg,
            queue_wait: PerCategory::register(
                registry,
                "gurita_job_queue_wait_seconds",
                "Time from job arrival to its first coflow activation.",
                secs,
            ),
            jct: PerCategory::register(
                registry,
                "gurita_jct_seconds",
                "Job completion time (arrival to last root coflow).",
                secs,
            ),
            cct: PerCategory::register(
                registry,
                "gurita_cct_seconds",
                "Coflow completion time (activation to completion).",
                secs,
            ),
            slowdown: PerCategory::register(
                registry,
                "gurita_cct_slowdown",
                "CCT divided by the ideal transfer time at the reference bandwidth.",
                ratio,
            ),
            jobs_completed: c("gurita_jobs_completed_total", "Jobs completed."),
            coflows_completed: c("gurita_coflows_completed_total", "Coflows completed."),
            flows_completed: c("gurita_flows_completed_total", "Flows completed."),
            priority_moves: c(
                "gurita_priority_moves_total",
                "Coflow moves between priority queues.",
            ),
            faults_applied: c("gurita_faults_applied_total", "Scheduled faults applied."),
            starvation_seconds: g(
                "gurita_coflow_starvation_seconds",
                "Cumulative seconds active coflows spent at zero aggregate rate.",
            ),
            starvation_events: c(
                "gurita_coflow_starvation_events_total",
                "Closed zero-rate starvation intervals.",
            ),
            control_delivered: c(
                "gurita_control_delivered_total",
                "Priority tables delivered to hosts.",
            ),
            control_dropped: c(
                "gurita_control_drops_total",
                "Control-plane deliveries lost to the lossy channel.",
            ),
            control_deduped: c(
                "gurita_control_deduped_total",
                "Deliveries rejected as stale or duplicate.",
            ),
            control_retransmits: c(
                "gurita_control_retransmits_total",
                "Coordinator retransmissions of unacked tables.",
            ),
            control_applied: c(
                "gurita_control_applied_total",
                "Sequence-numbered tables applied by hosts.",
            ),
            control_degraded_windows: c(
                "gurita_control_degraded_windows_total",
                "Closed local-fallback (degraded) windows.",
            ),
            control_degraded_seconds: g(
                "gurita_control_degraded_seconds",
                "Cumulative seconds hosts spent scheduling on local decisions.",
            ),
            agent_crashes: c("gurita_agent_crashes_total", "Host agent crashes."),
            agent_restarts: c("gurita_agent_restarts_total", "Host agent restarts."),
            partitions: c("gurita_partitions_total", "Coordinator partitions started."),
            partition_active: g(
                "gurita_partition_active",
                "1 while the coordinator is partitioned.",
            ),
            event_queue_depth: g("gurita_event_queue_depth", "Pending simulation events."),
            active_flows: g("gurita_active_flows", "Open flows, including parked."),
            parked_flows: g("gurita_parked_flows", "Flows parked on dead paths."),
            active_coflows: g("gurita_active_coflows", "Active (incomplete) coflows."),
            starved_coflows: g(
                "gurita_starved_coflows",
                "Active coflows currently at zero aggregate rate.",
            ),
            alloc_full_passes: g(
                "gurita_alloc_full_passes",
                "Cumulative full-pass rate recomputations.",
            ),
            alloc_incremental_passes: g(
                "gurita_alloc_incremental_passes",
                "Cumulative incremental (dirty-component) recomputations.",
            ),
            alloc_parallel_epochs: g(
                "gurita_alloc_parallel_epochs",
                "Cumulative recompute epochs fanned across the worker pool.",
            ),
            alloc_component_flows: g(
                "gurita_alloc_touched_flows",
                "Cumulative flows re-rated across all recomputations.",
            ),
            alloc_touched_links: g(
                "gurita_alloc_touched_links",
                "Distinct links touched by the most recent recompute epoch.",
            ),
            alloc_waterfill_passes: g(
                "gurita_alloc_waterfill_passes",
                "Water-filling passes run by the most recent recompute epoch.",
            ),
            job_first_activate: HashMap::new(),
            job_bytes: HashMap::new(),
            coflow_bytes: HashMap::new(),
        }
    }
}

impl TelemetrySink for MetricsSink {
    fn record(&mut self, rec: &TraceRecord) {
        match rec {
            TraceRecord::CoflowActivate {
                t,
                coflow,
                job,
                bytes,
                ..
            } => {
                self.job_first_activate.entry(*job).or_insert(*t);
                *self.job_bytes.entry(*job).or_insert(0.0) += *bytes;
                self.coflow_bytes.insert(*coflow, *bytes);
            }
            TraceRecord::CoflowComplete { coflow, cct, .. } => {
                self.coflows_completed.inc();
                let bytes = self.coflow_bytes.remove(coflow).unwrap_or(0.0);
                let cat = SizeCategory::of_bytes(bytes);
                self.cct.observe(cat, *cct);
                if self.cfg.ref_bandwidth > 0.0 && bytes > 0.0 {
                    let ideal = bytes / self.cfg.ref_bandwidth;
                    if ideal > 0.0 {
                        self.slowdown.observe(cat, *cct / ideal);
                    }
                }
            }
            TraceRecord::CoflowStarved { dur, .. } => {
                self.starvation_events.inc();
                self.starvation_seconds.add(*dur);
            }
            TraceRecord::JobComplete { t, job, jct } => {
                self.jobs_completed.inc();
                let bytes = self.job_bytes.remove(job).unwrap_or(0.0);
                let cat = SizeCategory::of_bytes(bytes);
                self.jct.observe(cat, *jct);
                let arrival = *t - *jct;
                if let Some(first) = self.job_first_activate.remove(job) {
                    self.queue_wait.observe(cat, (first - arrival).max(0.0));
                }
            }
            TraceRecord::FlowComplete { .. } => self.flows_completed.inc(),
            TraceRecord::PriorityMove { .. } => self.priority_moves.inc(),
            TraceRecord::FaultApplied { .. } => self.faults_applied.inc(),
            TraceRecord::ControlDelivered { .. } => self.control_delivered.inc(),
            TraceRecord::ControlDropped { .. } => self.control_dropped.inc(),
            TraceRecord::ControlDeduped { .. } => self.control_deduped.inc(),
            TraceRecord::ControlRetransmit { .. } => self.control_retransmits.inc(),
            TraceRecord::ControlApplied { .. } => self.control_applied.inc(),
            TraceRecord::ControlDegraded { dur, .. } => {
                self.control_degraded_windows.inc();
                self.control_degraded_seconds.add(*dur);
            }
            TraceRecord::AgentCrashed { .. } => self.agent_crashes.inc(),
            TraceRecord::AgentRestarted { .. } => self.agent_restarts.inc(),
            TraceRecord::Partition { active, .. } => {
                if *active {
                    self.partitions.inc();
                }
                self.partition_active.set(if *active { 1.0 } else { 0.0 });
            }
            TraceRecord::Epoch(s) => {
                self.event_queue_depth.set(s.event_queue_depth as f64);
                self.active_flows.set(s.active_flows as f64);
                self.parked_flows.set(s.parked_flows as f64);
                self.active_coflows.set(s.active_coflows as f64);
                self.starved_coflows.set(s.starved_coflows as f64);
                self.alloc_full_passes.set(s.alloc_full_passes as f64);
                self.alloc_incremental_passes
                    .set(s.alloc_incremental_passes as f64);
                self.alloc_parallel_epochs
                    .set(s.alloc_parallel_epochs as f64);
                self.alloc_component_flows
                    .set(s.alloc_component_flows as f64);
                self.alloc_touched_links.set(s.alloc_touched_links as f64);
                self.alloc_waterfill_passes
                    .set(s.alloc_waterfill_passes as f64);
            }
            TraceRecord::FlowStart { .. }
            | TraceRecord::FlowPark { .. }
            | TraceRecord::FlowResume { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gurita_metrics::encode::prometheus_text;

    fn rec_sink() -> (Arc<Registry>, MetricsSink) {
        let reg = Arc::new(Registry::new());
        let sink = MetricsSink::new(&reg, MetricsConfig { ref_bandwidth: 1e9 });
        (reg, sink)
    }

    #[test]
    fn lifecycle_records_land_in_series() {
        let (reg, mut sink) = rec_sink();
        sink.record(&TraceRecord::CoflowActivate {
            t: 1.0,
            coflow: 0,
            job: 0,
            dag_vertex: 0,
            width: 2,
            bytes: 50.0e6,
        });
        sink.record(&TraceRecord::CoflowComplete {
            t: 3.0,
            coflow: 0,
            job: 0,
            cct: 2.0,
            starved_total: 0.0,
            starved_max: 0.0,
        });
        sink.record(&TraceRecord::JobComplete {
            t: 3.0,
            job: 0,
            jct: 2.5,
        });
        sink.record(&TraceRecord::CoflowStarved {
            t: 2.0,
            coflow: 0,
            dur: 0.75,
        });
        let snap = reg.snapshot();
        // 50 MB -> category I; jct 2.5s recorded there.
        let jct = snap.family("gurita_jct_seconds").expect("family");
        let s = jct.series_with("category", "I").expect("cat I");
        assert_eq!(s.histogram.as_ref().expect("histogram").count, 1);
        // queue wait = first activation (1.0) - arrival (3.0 - 2.5 = 0.5) = 0.5s
        let qw = snap
            .family("gurita_job_queue_wait_seconds")
            .expect("family")
            .series_with("category", "I")
            .expect("cat I")
            .histogram
            .clone()
            .expect("histogram");
        assert_eq!(qw.count, 1);
        assert!((qw.sum - 0.5).abs() < 1e-12, "sum = {}", qw.sum);
        // slowdown = cct / (bytes/ref_bw) = 2.0 / 0.05 = 40
        let sd = snap
            .family("gurita_cct_slowdown")
            .expect("family")
            .series_with("category", "I")
            .expect("cat I")
            .histogram
            .clone()
            .expect("histogram");
        assert_eq!(sd.count, 1);
        assert!((sd.sum - 40.0).abs() < 1e-9, "sum = {}", sd.sum);
        // starvation ledger
        assert_eq!(
            snap.family("gurita_coflow_starvation_events_total")
                .expect("family")
                .series[0]
                .value,
            1.0
        );
        assert!(
            (snap
                .family("gurita_coflow_starvation_seconds")
                .expect("family")
                .series[0]
                .value
                - 0.75)
                .abs()
                < 1e-12
        );
        // Bookkeeping is drained on completion.
        assert!(sink.job_bytes.is_empty());
        assert!(sink.coflow_bytes.is_empty());
        assert!(sink.job_first_activate.is_empty());
        // The whole registry encodes cleanly.
        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE gurita_jct_seconds histogram"));
        assert!(text.contains("gurita_jobs_completed_total 1"));
    }

    #[test]
    fn control_ledger_counts() {
        let (reg, mut sink) = rec_sink();
        sink.record(&TraceRecord::ControlDropped {
            t: 0.1,
            host: 3,
            seq: 7,
        });
        sink.record(&TraceRecord::ControlRetransmit {
            t: 0.2,
            host: 3,
            seq: 7,
            attempt: 1,
        });
        sink.record(&TraceRecord::ControlApplied {
            t: 0.3,
            host: 3,
            seq: 7,
        });
        sink.record(&TraceRecord::ControlDegraded {
            t: 0.4,
            host: 3,
            dur: 0.25,
        });
        sink.record(&TraceRecord::Partition {
            t: 0.5,
            active: true,
        });
        sink.record(&TraceRecord::Partition {
            t: 0.6,
            active: false,
        });
        let snap = reg.snapshot();
        let get = |name: &str| snap.family(name).expect(name).series[0].value;
        assert_eq!(get("gurita_control_drops_total"), 1.0);
        assert_eq!(get("gurita_control_retransmits_total"), 1.0);
        assert_eq!(get("gurita_control_applied_total"), 1.0);
        assert_eq!(get("gurita_control_degraded_windows_total"), 1.0);
        assert!((get("gurita_control_degraded_seconds") - 0.25).abs() < 1e-12);
        assert_eq!(get("gurita_partitions_total"), 1.0);
        assert_eq!(get("gurita_partition_active"), 0.0);
    }

    #[test]
    fn epoch_samples_drive_gauges() {
        let (reg, mut sink) = rec_sink();
        let s = crate::telemetry::EpochSample {
            t: 5.0,
            event_queue_depth: 42,
            active_flows: 10,
            alloc_full_passes: 3,
            alloc_incremental_passes: 9,
            ..Default::default()
        };
        sink.record(&TraceRecord::Epoch(s));
        let snap = reg.snapshot();
        let get = |name: &str| snap.family(name).expect(name).series[0].value;
        assert_eq!(get("gurita_event_queue_depth"), 42.0);
        assert_eq!(get("gurita_active_flows"), 10.0);
        assert_eq!(get("gurita_alloc_full_passes"), 3.0);
        assert_eq!(get("gurita_alloc_incremental_passes"), 9.0);
    }
}
