//! Simulator error types.

use std::error::Error;
use std::fmt;

/// Error produced when constructing or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// Fat-tree pod counts must be even and at least 2.
    InvalidPodCount {
        /// The rejected pod count.
        k: usize,
    },
    /// A flow references a host that does not exist in the fabric.
    UnknownHost {
        /// The out-of-range host index.
        host: usize,
        /// Number of hosts in the fabric.
        num_hosts: usize,
    },
    /// A scheduler requested more priority queues than the fabric's
    /// switches support.
    TooManyQueues {
        /// Queues requested.
        requested: usize,
        /// Queues supported.
        supported: usize,
    },
    /// The event loop exceeded its safety bound without draining all
    /// jobs; indicates a livelock (e.g. total starvation) or a bound set
    /// too low.
    EventBudgetExhausted {
        /// The configured maximum number of events.
        max_events: u64,
    },
    /// A fault schedule entry is invalid: unknown link or host, a
    /// degradation factor outside `(0, 1]`, or a non-finite/negative
    /// injection time.
    InvalidFault {
        /// Human-readable description of the rejected fault.
        reason: String,
    },
    /// Every in-flight flow is parked on failed links and no recovery,
    /// arrival, or further fault is scheduled: the run can never drain.
    /// Reported eagerly instead of spinning the event loop into
    /// [`SimError::EventBudgetExhausted`].
    StrandedFlows {
        /// Number of flows parked when the deadlock was detected.
        parked: usize,
    },
    /// An online submission reused a job id that was already submitted
    /// to the engine (pending, running, completed, or cancelled). Job
    /// ids are permanent within one engine's lifetime.
    DuplicateJob {
        /// The rejected job id index.
        job: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidPodCount { k } => {
                write!(f, "fat-tree pod count must be even and >= 2, got {k}")
            }
            SimError::UnknownHost { host, num_hosts } => {
                write!(f, "host {host} out of range (fabric has {num_hosts} hosts)")
            }
            SimError::TooManyQueues {
                requested,
                supported,
            } => write!(
                f,
                "scheduler requested {requested} priority queues but switches support {supported}"
            ),
            SimError::EventBudgetExhausted { max_events } => {
                write!(
                    f,
                    "event budget of {max_events} events exhausted before all jobs completed"
                )
            }
            SimError::InvalidFault { reason } => {
                write!(f, "invalid fault: {reason}")
            }
            SimError::StrandedFlows { parked } => {
                write!(
                    f,
                    "{parked} flow(s) parked on failed links with no recovery scheduled; run cannot drain"
                )
            }
            SimError::DuplicateJob { job } => {
                write!(f, "job id {job} was already submitted to this engine")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::InvalidPodCount { k: 3 }
            .to_string()
            .contains("even"));
        assert!(SimError::UnknownHost {
            host: 9,
            num_hosts: 4
        }
        .to_string()
        .contains("out of range"));
        assert!(SimError::TooManyQueues {
            requested: 10,
            supported: 8
        }
        .to_string()
        .contains("priority queues"));
        assert!(SimError::EventBudgetExhausted { max_events: 5 }
            .to_string()
            .contains("budget"));
        assert!(SimError::InvalidFault {
            reason: "factor 2.0 out of range".into()
        }
        .to_string()
        .contains("factor"));
        assert!(SimError::StrandedFlows { parked: 3 }
            .to_string()
            .contains("parked"));
        assert!(SimError::DuplicateJob { job: 7 }
            .to_string()
            .contains("already submitted"));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
