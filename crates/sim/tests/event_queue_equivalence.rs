//! Property test: the calendar event queue must be *bit-for-bit*
//! interchangeable with the binary heap it replaced.
//!
//! Both queues pop pending events in exactly `(time, seq)` order, so a
//! run under the default calendar queue and the same run under
//! `SimConfig::force_binary_heap_events` process identical event
//! sequences and must produce `PartialEq`-identical [`RunResult`]s —
//! including every completion time, fault record, and diagnostic
//! counter. Scenarios draw random job mixes, inject mid-run faults
//! (brownout, hard link failure with recovery, degradation), and run
//! with a nonzero control latency so delayed-decision events interleave
//! with ticks, completions, and faults in the queue.

use gurita_model::{units::MB, CoflowSpec, FlowSpec, HostId, JobDag, JobSpec};
use gurita_sim::faults::{FaultEvent, FaultSchedule};
use gurita_sim::runtime::{SimConfig, Simulation};
use gurita_sim::sched::{Assignment, FifoScheduler, Observation, Oracle, QueuePolicy, Scheduler};
use gurita_sim::stats::RunResult;
use gurita_sim::topology::{Fabric, FatTree, LinkId};
use proptest::prelude::*;

const PODS: usize = 4;
const HOSTS: usize = 16; // k=4 fat-tree: k^3/4 hosts.

/// Minimal WRR scheduler so runs exercise the weighted allocator path
/// (mirrors the one in `incremental_equivalence`).
struct WrrScheduler {
    queues: usize,
}

impl Scheduler for WrrScheduler {
    fn name(&self) -> String {
        "wrr-test".to_owned()
    }

    fn num_queues(&self) -> usize {
        self.queues
    }

    fn assign(&mut self, obs: &Observation, _oracle: &Oracle<'_>) -> Assignment {
        obs.coflows
            .iter()
            .map(|c| (c.job.index() + c.dag_vertex) % self.queues)
            .collect()
    }

    fn queue_policy(&mut self, _obs: &Observation) -> QueuePolicy {
        QueuePolicy::Weighted(vec![8.0, 4.0, 2.0, 1.0])
    }
}

/// One drawn job: arrival plus a chain of single-flow stages.
type JobDraw = (f64, Vec<(usize, usize, f64)>);

fn build_jobs(draws: &[JobDraw]) -> Vec<JobSpec> {
    draws
        .iter()
        .enumerate()
        .map(|(i, (arrival, flows))| {
            let coflows: Vec<CoflowSpec> = flows
                .iter()
                .map(|&(src, dst, mb)| {
                    let dst = if dst == src { (dst + 1) % HOSTS } else { dst };
                    CoflowSpec::new(vec![FlowSpec::new(HostId(src), HostId(dst), mb * MB)])
                })
                .collect();
            let dag = JobDag::chain(coflows.len()).expect("non-empty chain");
            JobSpec::new(i, *arrival, coflows, dag).expect("valid job")
        })
        .collect()
}

/// Faults around `start`: brownout + hard NIC-link failure + degrade,
/// all later recovered, so reroute/park/resume events land in the queue.
fn build_faults(start: f64, factor: f64, host: usize) -> FaultSchedule {
    let mut faults = FaultSchedule::new();
    faults
        .push(
            start,
            FaultEvent::BrownoutHost {
                host: HostId(host),
                factor,
            },
        )
        .push(
            start + 0.1,
            FaultEvent::FailLink {
                link: LinkId(HOSTS + host),
            },
        )
        .push(
            start + 0.3,
            FaultEvent::DegradeLink {
                link: LinkId((host + 1) % HOSTS),
                factor,
            },
        )
        .push(
            start + 0.8,
            FaultEvent::RecoverLink {
                link: LinkId(HOSTS + host),
            },
        )
        .push(start + 1.0, FaultEvent::RestoreHost { host: HostId(host) })
        .push(
            start + 1.3,
            FaultEvent::RestoreLink {
                link: LinkId((host + 1) % HOSTS),
            },
        );
    faults
}

fn run_one(
    jobs: &[JobSpec],
    faults: &FaultSchedule,
    wrr: bool,
    control_latency: f64,
    force_heap: bool,
) -> RunResult {
    let fabric = FatTree::new(PODS).expect("valid pod count");
    assert_eq!(fabric.num_hosts(), HOSTS);
    let mut sim = Simulation::new(
        fabric,
        SimConfig {
            control_latency,
            force_binary_heap_events: force_heap,
            ..SimConfig::default()
        },
    );
    if wrr {
        sim.run_with_faults(jobs.to_vec(), &mut WrrScheduler { queues: 4 }, faults)
    } else {
        sim.run_with_faults(jobs.to_vec(), &mut FifoScheduler::new(4), faults)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn calendar_matches_heap_with_faults_and_latency(
        draws in prop::collection::vec(
            (0.0f64..1.5, prop::collection::vec((0..HOSTS, 0..HOSTS, 0.2f64..4.0), 1..=3)),
            2..=6,
        ),
        start in 0.1f64..2.0,
        factor in 0.2f64..0.9,
        host in 0..HOSTS,
        latency in 0.0f64..0.02,
    ) {
        let jobs = build_jobs(&draws);
        let faults = build_faults(start, factor, host);
        let cal = run_one(&jobs, &faults, false, latency, false);
        let heap = run_one(&jobs, &faults, false, latency, true);
        prop_assert_eq!(cal, heap);
    }

    #[test]
    fn calendar_matches_heap_under_wrr(
        draws in prop::collection::vec(
            (0.0f64..1.5, prop::collection::vec((0..HOSTS, 0..HOSTS, 0.2f64..4.0), 1..=3)),
            2..=6,
        ),
        start in 0.1f64..2.0,
        factor in 0.2f64..0.9,
        host in 0..HOSTS,
    ) {
        let jobs = build_jobs(&draws);
        let faults = build_faults(start, factor, host);
        let cal = run_one(&jobs, &faults, true, 0.004, false);
        let heap = run_one(&jobs, &faults, true, 0.004, true);
        prop_assert_eq!(cal, heap);
    }

    #[test]
    fn calendar_matches_heap_without_faults(
        draws in prop::collection::vec(
            (0.0f64..1.5, prop::collection::vec((0..HOSTS, 0..HOSTS, 0.2f64..4.0), 1..=3)),
            2..=6,
        ),
    ) {
        let jobs = build_jobs(&draws);
        let faults = FaultSchedule::new();
        let cal = run_one(&jobs, &faults, false, 0.0, false);
        let heap = run_one(&jobs, &faults, false, 0.0, true);
        prop_assert_eq!(cal, heap);
    }
}
