//! Property test: interned path storage must be a pure representation
//! change.
//!
//! [`Fabric::path_ref`] resolved through a [`PathArena`] must yield
//! exactly the link slice the allocating [`Fabric::path`] returns, for
//! random `(src, dst, salt)` triples on small (8-pod) and large
//! (48-pod) fat-trees. And the fault re-salt reroute search must pick
//! the *identical* detour (same salt attempt, same links) whether it
//! walks interned paths (`resalt_live_path`) or owned vectors
//! (`resalt_live_path_vec`) — pinning down that the arena fast path
//! cannot change routing decisions.

use gurita_model::HostId;
use gurita_sim::faults::{resalt_live_path, resalt_live_path_vec, FaultEvent, FaultOverlay};
use gurita_sim::topology::{Fabric, FatTree, PathArena};
use proptest::prelude::*;

/// Checks `path_ref` against `path` for one triple on one fabric.
fn check_path_ref(fabric: &FatTree, arena: &mut PathArena, src: usize, dst: usize, salt: u64) {
    let hosts = fabric.num_hosts();
    let (src, dst) = (HostId(src % hosts), HostId(dst % hosts));
    let owned = fabric.path(src, dst, salt).expect("hosts in range");
    let interned = fabric
        .path_ref(src, dst, salt, arena)
        .expect("hosts in range");
    assert_eq!(
        arena.get(interned),
        owned.as_slice(),
        "arena slice diverged for ({src:?}, {dst:?}, salt {salt})"
    );
    assert_eq!(interned.len(), owned.len());
    assert_eq!(interned.is_empty(), owned.is_empty());
}

/// Builds an overlay with a few failed host-facing links derived from
/// the draw, so some ECMP choices are dead and re-salting must detour.
fn overlay_with_failures(fabric: &FatTree, fails: &[usize]) -> FaultOverlay {
    let hosts = fabric.num_hosts();
    let mut overlay = FaultOverlay::new();
    for &f in fails {
        // Host NIC uplinks occupy the low link ids; failing one severs
        // a specific host pair direction and forces detours elsewhere.
        let link = gurita_sim::topology::LinkId(f % (2 * hosts));
        overlay.apply(&FaultEvent::FailLink { link }, hosts);
    }
    overlay
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn path_ref_matches_path_on_8_pods(
        triples in prop::collection::vec((0usize..10_000, 0usize..10_000, 0u64..u64::MAX), 1..=20),
    ) {
        let fabric = FatTree::new(8).expect("valid pod count");
        let mut arena = PathArena::new();
        for (src, dst, salt) in triples {
            check_path_ref(&fabric, &mut arena, src, dst, salt);
        }
    }

    #[test]
    fn resalt_picks_identical_detours(
        pairs in prop::collection::vec((0usize..10_000, 0usize..10_000, 0u64..u64::MAX), 1..=12),
        fails in prop::collection::vec(0usize..10_000, 1..=8),
    ) {
        let fabric = FatTree::new(8).expect("valid pod count");
        let hosts = fabric.num_hosts();
        let overlay = overlay_with_failures(&fabric, &fails);
        let mut arena = PathArena::new();
        for (src, dst, salt) in pairs {
            let (src, dst) = (HostId(src % hosts), HostId(dst % hosts));
            let interned = resalt_live_path(&fabric, &overlay, &mut arena, salt, src, dst)
                .expect("hosts in range");
            let owned = resalt_live_path_vec(&fabric, &overlay, salt, src, dst)
                .expect("hosts in range");
            match (interned, owned) {
                (Some(r), Some(v)) => prop_assert_eq!(
                    arena.get(r),
                    v.as_slice(),
                    "detour diverged for ({:?}, {:?}, salt {})", src, dst, salt
                ),
                (None, None) => {}
                (r, v) => prop_assert!(
                    false,
                    "liveness diverged for ({:?}, {:?}, salt {}): interned {:?} vs owned {:?}",
                    src, dst, salt, r.map(|p| p.len()), v.map(|p| p.len())
                ),
            }
        }
    }
}

/// The 48-pod case is deterministic (no shrink iterations on a 27k-host
/// fabric): a fixed spread of triples plus dedup accounting.
#[test]
fn path_ref_matches_path_on_48_pods() {
    let fabric = FatTree::new(48).expect("valid pod count");
    let hosts = fabric.num_hosts();
    let mut arena = PathArena::new();
    let mut salt = 0x243F_6A88_85A3_08D3u64; // deterministic mixer seed
    for i in 0..200 {
        salt = salt
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let src = (salt >> 17) as usize % hosts;
        let dst = (salt >> 41) as usize % hosts;
        check_path_ref(&fabric, &mut arena, src, dst, salt ^ i);
    }
    // Re-interning the same triples must hit the arena cache, not grow it.
    let unique = arena.unique_paths();
    let mut salt2 = 0x243F_6A88_85A3_08D3u64;
    for i in 0..200 {
        salt2 = salt2
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let src = (salt2 >> 17) as usize % hosts;
        let dst = (salt2 >> 41) as usize % hosts;
        check_path_ref(&fabric, &mut arena, src, dst, salt2 ^ i);
    }
    assert_eq!(
        arena.unique_paths(),
        unique,
        "second pass must be cache hits"
    );
    assert!(arena.hit_rate() > 0.0);
}
