//! Property test: component-incremental rate recomputation must agree
//! with the from-scratch full pass (`SimConfig::force_full_recompute`)
//! on every completion time — under strict-priority and
//! weighted-round-robin queue policies, and across fault-overlay
//! capacity changes (brownouts, degradations, hard failures) injected
//! mid-run.
//!
//! Since PR 9 the two modes share one canonical allocation shape — one
//! waterfill call per connected flow↔link component, whether the pass
//! re-waterfills everything or only the dirty components — so each
//! component's demand set is identical in both modes and the agreement
//! is **bitwise**: the old merged full pass (whose EPS-slack
//! stale-candidate recheck coupled freeze order across components at
//! exact floating-point ties, bounding agreement at ~1e-9 relative) is
//! gone. `check_equivalent` asserts exact equality accordingly; the
//! relative form is kept for the error messages' readability.

use gurita_model::{units::MB, CoflowSpec, FlowSpec, HostId, JobDag, JobSpec};
use gurita_sim::faults::{FaultEvent, FaultSchedule};
use gurita_sim::runtime::{SimConfig, Simulation};
use gurita_sim::sched::{Assignment, FifoScheduler, Observation, Oracle, QueuePolicy, Scheduler};
use gurita_sim::stats::RunResult;
use gurita_sim::topology::{Fabric, FatTree, LinkId};
use proptest::prelude::*;

const PODS: usize = 4;
const HOSTS: usize = 16; // k=4 fat-tree: k^3/4 hosts.

/// Minimal WRR scheduler: spreads coflows across queues round-robin and
/// serves them with fixed weights, so runs exercise the
/// `Discipline::WeightedRoundRobin` allocator path.
struct WrrScheduler {
    queues: usize,
}

impl Scheduler for WrrScheduler {
    fn name(&self) -> String {
        "wrr-test".to_owned()
    }

    fn num_queues(&self) -> usize {
        self.queues
    }

    fn assign(&mut self, obs: &Observation, _oracle: &Oracle<'_>) -> Assignment {
        obs.coflows
            .iter()
            .map(|c| (c.job.index() + c.dag_vertex) % self.queues)
            .collect()
    }

    fn queue_policy(&mut self, _obs: &Observation) -> QueuePolicy {
        QueuePolicy::Weighted(vec![8.0, 4.0, 2.0, 1.0])
    }
}

/// One drawn job: arrival plus a chain of single-flow stages.
type JobDraw = (f64, Vec<(usize, usize, f64)>);

fn build_jobs(draws: &[JobDraw]) -> Vec<JobSpec> {
    draws
        .iter()
        .enumerate()
        .map(|(i, (arrival, flows))| {
            let coflows: Vec<CoflowSpec> = flows
                .iter()
                .map(|&(src, dst, mb)| {
                    let dst = if dst == src { (dst + 1) % HOSTS } else { dst };
                    CoflowSpec::new(vec![FlowSpec::new(HostId(src), HostId(dst), mb * MB)])
                })
                .collect();
            let dag = JobDag::chain(coflows.len()).expect("non-empty chain");
            JobSpec::new(i, *arrival, coflows, dag).expect("valid job")
        })
        .collect()
}

/// A fault script around `start`: a host brownout with recovery, one
/// degraded host-facing link, and a hard NIC-link failure that later
/// recovers (exercising reroute/park/resume on top of scale changes).
fn build_faults(start: f64, factor: f64, host: usize) -> FaultSchedule {
    let mut faults = FaultSchedule::new();
    faults
        .push(
            start,
            FaultEvent::BrownoutHost {
                host: HostId(host),
                factor,
            },
        )
        .push(
            start + 0.1,
            FaultEvent::FailLink {
                link: LinkId(HOSTS + host),
            },
        )
        .push(
            start + 0.3,
            FaultEvent::DegradeLink {
                link: LinkId((host + 1) % HOSTS),
                factor,
            },
        )
        .push(
            start + 0.8,
            FaultEvent::RecoverLink {
                link: LinkId(HOSTS + host),
            },
        )
        .push(start + 1.0, FaultEvent::RestoreHost { host: HostId(host) })
        .push(
            start + 1.3,
            FaultEvent::RestoreLink {
                link: LinkId((host + 1) % HOSTS),
            },
        );
    faults
}

fn run_one(jobs: &[JobSpec], faults: &FaultSchedule, wrr: bool, full: bool) -> RunResult {
    let fabric = FatTree::new(PODS).expect("valid pod count");
    assert_eq!(fabric.num_hosts(), HOSTS);
    let mut sim = Simulation::new(
        fabric,
        SimConfig {
            force_full_recompute: full,
            ..SimConfig::default()
        },
    );
    if wrr {
        sim.run_with_faults(jobs.to_vec(), &mut WrrScheduler { queues: 4 }, faults)
    } else {
        sim.run_with_faults(jobs.to_vec(), &mut FifoScheduler::new(4), faults)
    }
}

fn rel_close(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

/// Asserts the two runs completed the same jobs/coflows at bit-for-bit
/// equal times. Returns an error message for `prop_assert!`-style
/// reporting.
fn check_equivalent(inc: &RunResult, full: &RunResult) -> Result<(), String> {
    if inc.jobs.len() != full.jobs.len() || inc.coflows.len() != full.coflows.len() {
        return Err(format!(
            "completion counts diverged: {}/{} jobs, {}/{} coflows",
            inc.jobs.len(),
            full.jobs.len(),
            inc.coflows.len(),
            full.coflows.len()
        ));
    }
    let mut inc_jobs = inc.jobs.clone();
    let mut full_jobs = full.jobs.clone();
    inc_jobs.sort_by_key(|j| j.id.index());
    full_jobs.sort_by_key(|j| j.id.index());
    for (a, b) in inc_jobs.iter().zip(&full_jobs) {
        if a.id != b.id || !rel_close(a.jct, b.jct) || !rel_close(a.completed_at, b.completed_at) {
            return Err(format!(
                "job {:?} diverged: jct {} vs {}, completed {} vs {}",
                a.id, a.jct, b.jct, a.completed_at, b.completed_at
            ));
        }
    }
    let mut inc_cf = inc.coflows.clone();
    let mut full_cf = full.coflows.clone();
    inc_cf.sort_by_key(|c| (c.job.index(), c.dag_vertex));
    full_cf.sort_by_key(|c| (c.job.index(), c.dag_vertex));
    for (a, b) in inc_cf.iter().zip(&full_cf) {
        if a.job != b.job
            || a.dag_vertex != b.dag_vertex
            || !rel_close(a.cct(), b.cct())
            || !rel_close(a.completed_at, b.completed_at)
        {
            return Err(format!(
                "coflow {:?}/{} diverged: cct {} vs {}",
                a.job,
                a.dag_vertex,
                a.cct(),
                b.cct()
            ));
        }
    }
    if !rel_close(inc.makespan, full.makespan) {
        return Err(format!(
            "makespan diverged: {} vs {}",
            inc.makespan, full.makespan
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_matches_full_under_spq(
        draws in prop::collection::vec(
            (0.0f64..1.5, prop::collection::vec((0..HOSTS, 0..HOSTS, 0.2f64..4.0), 1..=3)),
            2..=6,
        ),
        start in 0.1f64..2.0,
        factor in 0.2f64..0.9,
        host in 0..HOSTS,
    ) {
        let jobs = build_jobs(&draws);
        let faults = build_faults(start, factor, host);
        let inc = run_one(&jobs, &faults, false, false);
        let full = run_one(&jobs, &faults, false, true);
        prop_assert!(
            check_equivalent(&inc, &full).is_ok(),
            "{}",
            check_equivalent(&inc, &full).unwrap_err()
        );
    }

    #[test]
    fn incremental_matches_full_under_wrr(
        draws in prop::collection::vec(
            (0.0f64..1.5, prop::collection::vec((0..HOSTS, 0..HOSTS, 0.2f64..4.0), 1..=3)),
            2..=6,
        ),
        start in 0.1f64..2.0,
        factor in 0.2f64..0.9,
        host in 0..HOSTS,
    ) {
        let jobs = build_jobs(&draws);
        let faults = build_faults(start, factor, host);
        let inc = run_one(&jobs, &faults, true, false);
        let full = run_one(&jobs, &faults, true, true);
        prop_assert!(
            check_equivalent(&inc, &full).is_ok(),
            "{}",
            check_equivalent(&inc, &full).unwrap_err()
        );
    }

    #[test]
    fn incremental_matches_full_without_faults(
        draws in prop::collection::vec(
            (0.0f64..1.5, prop::collection::vec((0..HOSTS, 0..HOSTS, 0.2f64..4.0), 1..=3)),
            2..=6,
        ),
    ) {
        let jobs = build_jobs(&draws);
        let faults = FaultSchedule::new();
        let inc = run_one(&jobs, &faults, false, false);
        let full = run_one(&jobs, &faults, false, true);
        prop_assert!(
            check_equivalent(&inc, &full).is_ok(),
            "{}",
            check_equivalent(&inc, &full).unwrap_err()
        );
    }
}
