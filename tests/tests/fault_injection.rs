//! Failure-injection integration tests: schedulers must remain correct
//! (drain everything, conserve bytes) when parts of the fabric brown
//! out, and degradation must never speed the network up.

use gurita_experiments::roster::SchedulerKind;
use gurita_model::HostId;
use gurita_sim::faults::DegradedFabric;
use gurita_sim::runtime::{SimConfig, Simulation};
use gurita_sim::topology::FatTree;
use gurita_workload::dags::StructureKind;
use gurita_workload::generator::{JobGenerator, WorkloadConfig};

fn workload(seed: u64) -> Vec<gurita_model::JobSpec> {
    JobGenerator::new(
        WorkloadConfig {
            num_jobs: 10,
            num_hosts: 128,
            structure: StructureKind::FbTao,
            category_weights: [0.5, 0.3, 0.2, 0.0, 0.0, 0.0, 0.0],
            ..WorkloadConfig::default()
        },
        seed,
    )
    .generate()
}

fn degraded(fraction_of_hosts: f64, factor: f64) -> DegradedFabric<FatTree> {
    let fabric = FatTree::new(8).unwrap();
    let n = 128;
    (0..((n as f64 * fraction_of_hosts) as usize)).fold(DegradedFabric::new(fabric), |f, i| {
        f.with_degraded_host(HostId((i * 37) % n), factor)
    })
}

#[test]
fn all_schedulers_survive_brownouts() {
    let jobs = workload(31);
    for kind in SchedulerKind::PAPER_SET {
        let mut sim = Simulation::new(degraded(0.25, 0.2), SimConfig::default());
        let mut sched = kind.build();
        let res = sim.run(jobs.clone(), sched.as_mut());
        assert_eq!(res.jobs.len(), 10, "{kind:?} lost jobs under faults");
        let total: f64 = jobs.iter().map(|j| j.total_bytes()).sum();
        let delivered: f64 = res.coflows.iter().map(|c| c.bytes).sum();
        assert!((delivered - total).abs() / total < 1e-9, "{kind:?} lost bytes");
    }
}

#[test]
fn degradation_never_speeds_the_network_up() {
    let jobs = workload(32);
    let run = |fabric: DegradedFabric<FatTree>| {
        let mut sim = Simulation::new(fabric, SimConfig::default());
        let mut sched = SchedulerKind::Gurita.build();
        sim.run(jobs.clone(), sched.as_mut())
    };
    let healthy = run(degraded(0.0, 1.0));
    let browned = run(degraded(0.3, 0.2));
    // Every job's completion time is at least its healthy one (capacity
    // only shrank and scheduling inputs are identical observations of a
    // slower network — allow a small scheduling-noise slack).
    assert!(
        browned.avg_jct() >= healthy.avg_jct() * 0.95,
        "brownouts should not reduce avg JCT: {} vs {}",
        browned.avg_jct(),
        healthy.avg_jct()
    );
}

#[test]
fn single_hot_link_degradation_is_localized() {
    // Degrading one host NIC must not disturb jobs that never touch it.
    use gurita_model::{CoflowSpec, FlowSpec, JobDag, JobSpec};
    use gurita_model::units::MB;
    let untouched = JobSpec::new(
        0,
        0.0,
        vec![CoflowSpec::new(vec![FlowSpec::new(
            HostId(10),
            HostId(11),
            8.0 * MB,
        )])],
        JobDag::chain(1).unwrap(),
    )
    .unwrap();
    let through_fault = JobSpec::new(
        1,
        0.0,
        vec![CoflowSpec::new(vec![FlowSpec::new(
            HostId(0),
            HostId(1),
            8.0 * MB,
        )])],
        JobDag::chain(1).unwrap(),
    )
    .unwrap();
    let fabric = DegradedFabric::new(FatTree::with_capacity(4, MB).unwrap())
        .with_degraded_host(HostId(1), 0.5);
    let mut sim = Simulation::new(fabric, SimConfig::default());
    let mut sched = SchedulerKind::Pfs.build();
    let res = sim.run(vec![untouched, through_fault], &mut *sched);
    let j0 = res.jobs.iter().find(|j| j.id.index() == 0).unwrap();
    let j1 = res.jobs.iter().find(|j| j.id.index() == 1).unwrap();
    assert!((j0.jct - 8.0).abs() < 1e-6, "unaffected job at line rate: {}", j0.jct);
    assert!((j1.jct - 16.0).abs() < 1e-6, "affected job at half rate: {}", j1.jct);
}
