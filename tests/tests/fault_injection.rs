//! Failure-injection integration tests: schedulers must remain correct
//! (drain everything, conserve bytes) when parts of the fabric brown
//! out — statically at construction or dynamically mid-run, including
//! hard link failures with rerouting/parking and later recovery.

use gurita_experiments::roster::SchedulerKind;
use gurita_model::HostId;
use gurita_sim::faults::{DegradedFabric, FaultEvent, FaultSchedule};
use gurita_sim::runtime::{SimConfig, Simulation};
use gurita_sim::topology::{Fabric, FatTree};
use gurita_workload::chaos::{ChaosConfig, ChaosGenerator};
use gurita_workload::dags::StructureKind;
use gurita_workload::generator::{JobGenerator, WorkloadConfig};

fn workload(seed: u64) -> Vec<gurita_model::JobSpec> {
    JobGenerator::new(
        WorkloadConfig {
            num_jobs: 10,
            num_hosts: 128,
            structure: StructureKind::FbTao,
            category_weights: [0.5, 0.3, 0.2, 0.0, 0.0, 0.0, 0.0],
            ..WorkloadConfig::default()
        },
        seed,
    )
    .generate()
}

fn degraded(fraction_of_hosts: f64, factor: f64) -> DegradedFabric<FatTree> {
    let fabric = FatTree::new(8).unwrap();
    let n = 128;
    (0..((n as f64 * fraction_of_hosts) as usize)).fold(DegradedFabric::new(fabric), |f, i| {
        f.with_degraded_host(HostId((i * 37) % n), factor)
    })
}

#[test]
fn all_schedulers_survive_brownouts() {
    let jobs = workload(31);
    for kind in SchedulerKind::PAPER_SET {
        let mut sim = Simulation::new(degraded(0.25, 0.2), SimConfig::default());
        let mut sched = kind.build();
        let res = sim.run(jobs.clone(), sched.as_mut());
        assert_eq!(res.jobs.len(), 10, "{kind:?} lost jobs under faults");
        let total: f64 = jobs.iter().map(|j| j.total_bytes()).sum();
        let delivered: f64 = res.coflows.iter().map(|c| c.bytes).sum();
        assert!(
            (delivered - total).abs() / total < 1e-9,
            "{kind:?} lost bytes"
        );
    }
}

#[test]
fn mid_run_degrade_restore_conserves_bytes_for_every_scheduler() {
    // A brown-out that arrives *during* the run and lifts again: every
    // paper-set scheduler must still drain all jobs and conserve bytes
    // to within 1e-9 relative error.
    let jobs = workload(33);
    let mut faults = FaultSchedule::new();
    for i in 0..32 {
        let host = HostId((i * 37) % 128);
        faults.push(0.2, FaultEvent::BrownoutHost { host, factor: 0.2 });
        faults.push(1.5, FaultEvent::RestoreHost { host });
    }
    for kind in SchedulerKind::PAPER_SET {
        let mut sim = Simulation::new(FatTree::new(8).unwrap(), SimConfig::default());
        let mut sched = kind.build();
        let res = sim
            .try_run_with_faults(jobs.clone(), sched.as_mut(), &faults)
            .unwrap_or_else(|e| panic!("{kind:?} failed under degrade/restore: {e}"));
        assert_eq!(res.jobs.len(), jobs.len(), "{kind:?} lost jobs");
        let total: f64 = jobs.iter().map(|j| j.total_bytes()).sum();
        let delivered: f64 = res.coflows.iter().map(|c| c.bytes).sum();
        assert!(
            (delivered - total).abs() / total < 1e-9,
            "{kind:?} lost bytes: {delivered} vs {total}"
        );
        assert_eq!(res.faults.len(), 64, "{kind:?} missed fault events");
    }
}

#[test]
fn fail_recover_cycle_reroutes_or_parks_without_budget_exhaustion() {
    // Hard-fail a host uplink mid-run, recover it later. Flows through
    // that NIC cannot be rerouted (it is the host's only egress), so
    // they must park and resume — never spinning the event loop into
    // EventBudgetExhausted.
    let jobs = workload(34);
    let mut faults = FaultSchedule::new();
    for h in [0usize, 5, 9] {
        faults.push(0.1, FaultEvent::FailHost { host: HostId(h) });
        faults.push(2.0, FaultEvent::RecoverHost { host: HostId(h) });
    }
    for kind in SchedulerKind::PAPER_SET {
        let mut sim = Simulation::new(FatTree::new(8).unwrap(), SimConfig::default());
        let mut sched = kind.build();
        let res = sim
            .try_run_with_faults(jobs.clone(), sched.as_mut(), &faults)
            .unwrap_or_else(|e| panic!("{kind:?} failed under fail/recover: {e}"));
        assert_eq!(res.jobs.len(), jobs.len(), "{kind:?} lost jobs");
        // Every parked flow must have resumed (the run drained).
        assert_eq!(
            res.flows_parked, res.flows_resumed,
            "{kind:?} left flows parked"
        );
    }
}

#[test]
fn chaos_acceptance_brownout_plus_core_link_failure() {
    // The issue's acceptance scenario: 25% of hosts browned out mid-run,
    // one core-facing link hard-failed, both recovered later. Every
    // paper-set scheduler must drain all jobs, conserve bytes to 1e-9
    // relative error, and finish without panics or budget exhaustion.
    let jobs = workload(35);
    let fabric = FatTree::new(8).unwrap();
    let sample_path = fabric.path(HostId(0), HostId(127), 0).unwrap();
    let core_link = sample_path[sample_path.len() / 2];
    let faults = ChaosGenerator::new(
        ChaosConfig {
            num_hosts: 128,
            brownout_fraction: 0.25,
            severity: 0.2,
            start: 0.2,
            duration: 1.5,
            fail_links: vec![core_link],
        },
        35,
    )
    .generate();
    let total: f64 = jobs.iter().map(|j| j.total_bytes()).sum();
    for kind in SchedulerKind::PAPER_SET {
        let mut sim = Simulation::new(fabric.clone(), SimConfig::default());
        let mut sched = kind.build();
        let res = sim
            .try_run_with_faults(jobs.clone(), sched.as_mut(), &faults)
            .unwrap_or_else(|e| panic!("{kind:?} failed the chaos scenario: {e}"));
        assert_eq!(res.jobs.len(), jobs.len(), "{kind:?} lost jobs");
        let delivered: f64 = res.coflows.iter().map(|c| c.bytes).sum();
        assert!(
            (delivered - total).abs() / total < 1e-9,
            "{kind:?} lost bytes: {delivered} vs {total}"
        );
        // The fault timeline is recorded for post-hoc correlation: every
        // fault that fired before the run drained, in time order. (Events
        // scheduled after the last completion are moot and unrecorded.)
        assert!(!res.faults.is_empty(), "{kind:?} recorded no faults");
        assert!(res.faults.len() <= faults.len());
        assert!(res.faults.windows(2).all(|w| w[0].at <= w[1].at));
        // A drained run cannot leave flows parked.
        assert_eq!(
            res.flows_parked, res.flows_resumed,
            "{kind:?} left flows parked"
        );
    }
}

#[test]
fn degradation_never_speeds_the_network_up() {
    let jobs = workload(32);
    let run = |fabric: DegradedFabric<FatTree>| {
        let mut sim = Simulation::new(fabric, SimConfig::default());
        let mut sched = SchedulerKind::Gurita.build();
        sim.run(jobs.clone(), sched.as_mut())
    };
    let healthy = run(degraded(0.0, 1.0));
    let browned = run(degraded(0.3, 0.2));
    // Every job's completion time is at least its healthy one (capacity
    // only shrank and scheduling inputs are identical observations of a
    // slower network — allow a small scheduling-noise slack).
    assert!(
        browned.avg_jct() >= healthy.avg_jct() * 0.95,
        "brownouts should not reduce avg JCT: {} vs {}",
        browned.avg_jct(),
        healthy.avg_jct()
    );
}

#[test]
fn single_hot_link_degradation_is_localized() {
    // Degrading one host NIC must not disturb jobs that never touch it.
    use gurita_model::units::MB;
    use gurita_model::{CoflowSpec, FlowSpec, JobDag, JobSpec};
    let untouched = JobSpec::new(
        0,
        0.0,
        vec![CoflowSpec::new(vec![FlowSpec::new(
            HostId(10),
            HostId(11),
            8.0 * MB,
        )])],
        JobDag::chain(1).unwrap(),
    )
    .unwrap();
    let through_fault = JobSpec::new(
        1,
        0.0,
        vec![CoflowSpec::new(vec![FlowSpec::new(
            HostId(0),
            HostId(1),
            8.0 * MB,
        )])],
        JobDag::chain(1).unwrap(),
    )
    .unwrap();
    let fabric = DegradedFabric::new(FatTree::with_capacity(4, MB).unwrap())
        .with_degraded_host(HostId(1), 0.5);
    let mut sim = Simulation::new(fabric, SimConfig::default());
    let mut sched = SchedulerKind::Pfs.build();
    let res = sim.run(vec![untouched, through_fault], &mut *sched);
    let j0 = res.jobs.iter().find(|j| j.id.index() == 0).unwrap();
    let j1 = res.jobs.iter().find(|j| j.id.index() == 1).unwrap();
    assert!(
        (j0.jct - 8.0).abs() < 1e-6,
        "unaffected job at line rate: {}",
        j0.jct
    );
    assert!(
        (j1.jct - 16.0).abs() < 1e-6,
        "affected job at half rate: {}",
        j1.jct
    );
}
