//! The service-mode acceptance invariant, property-tested: a workload
//! submitted through the **online** admission path
//! ([`Engine::submit_job`]) before the engine starts must produce a
//! [`RunResult`] **bit-for-bit identical** to the offline
//! [`Simulation`] run of the same workload — across schedulers
//! (centralized and decentralized), control latencies, and worker
//! thread counts.
//!
//! Why exact equality is attainable: online submission pushes the same
//! `JobArrival` events with the same `(time, seq)` keys the offline
//! constructor would have assigned (the engine defers its fault and
//! control-timeline seeding until the first step precisely so pre-start
//! submissions take the leading sequence numbers), and admission seeds
//! the dirty-component set exactly like a t=0 arrival, so every
//! downstream recompute sees identical inputs in an identical order.

use gurita_experiments::roster::SchedulerKind;
use gurita_model::{HostId, JobSpec};
use gurita_sim::faults::{AgentCrash, ControlFaults, FaultSchedule, PartitionWindow};
use gurita_sim::runtime::{Engine, SimConfig, Simulation};
use gurita_sim::stats::RunResult;
use gurita_sim::topology::BigSwitch;
use gurita_workload::dags::StructureKind;
use gurita_workload::generator::{JobGenerator, WorkloadConfig};
use proptest::prelude::*;

const HOSTS: usize = 32;

fn workload(num_jobs: usize, seed: u64) -> Vec<JobSpec> {
    JobGenerator::new(
        WorkloadConfig {
            num_jobs,
            num_hosts: HOSTS,
            structure: StructureKind::FbTao,
            category_weights: [0.5, 0.3, 0.2, 0.0, 0.0, 0.0, 0.0],
            ..WorkloadConfig::default()
        },
        seed,
    )
    .generate()
}

fn fabric() -> BigSwitch {
    BigSwitch::new(HOSTS, gurita_model::units::GBPS_10)
}

fn sim_config(latency: f64, threads: usize, faults: Option<ControlFaults>) -> SimConfig {
    SimConfig {
        control_latency: latency,
        threads,
        control_faults: faults,
        ..SimConfig::default()
    }
}

fn run_offline(kind: SchedulerKind, jobs: &[JobSpec], config: &SimConfig) -> RunResult {
    let mut plane = kind.build_plane();
    Simulation::new(fabric(), config.clone())
        .try_run_control(jobs.to_vec(), plane.as_mut())
        .expect("offline run failed")
}

/// The online path: construct an idle engine, submit the whole workload
/// through `submit_job`, then run to drained.
fn run_online(kind: SchedulerKind, jobs: &[JobSpec], config: &SimConfig) -> RunResult {
    let mut plane = kind.build_plane();
    let fabric = fabric();
    let schedule = FaultSchedule::new();
    let mut engine = Engine::online(&fabric, config, plane.as_mut(), &schedule)
        .expect("online engine construction failed");
    for job in jobs {
        engine
            .submit_job(job.clone())
            .expect("online admission failed");
    }
    engine.run_to_drained().expect("online run failed");
    engine.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The acceptance identity: online t=0 submission ≡ offline run,
    /// bit-for-bit, across scheduler × control latency × threads.
    #[test]
    fn online_submission_is_bit_for_bit_offline(
        seed in 0u64..1_000,
        jobs in 6usize..14,
        kind_idx in 0usize..4,
        latency_idx in 0usize..2,
        threads_idx in 0usize..3,
    ) {
        let kind = [
            SchedulerKind::Gurita,
            SchedulerKind::Pfs,
            SchedulerKind::Aalo,
            SchedulerKind::GuritaLocal,
        ][kind_idx];
        let latency = [0.0, 1e-3][latency_idx];
        let threads = [1usize, 2, 4][threads_idx];
        let jobs = workload(jobs, seed);
        let config = sim_config(latency, threads, None);
        let offline = run_offline(kind, &jobs, &config);
        let online = run_online(kind, &jobs, &config);
        prop_assert!(
            offline == online,
            "online path diverged from offline for {kind:?} \
             (latency {latency}, threads {threads})"
        );
    }
}

/// A crash-and-partition profile over the decentralized plane — the
/// control-fault machinery must compose with online admission.
fn chaos(seed: u64) -> ControlFaults {
    ControlFaults {
        drop_prob: 0.2,
        duplicate_prob: 0.1,
        seed,
        staleness_bound: 0.1,
        crashes: vec![AgentCrash {
            host: HostId(3),
            at: 0.02,
            restart_after: Some(0.05),
        }],
        partitions: vec![PartitionWindow {
            start: 0.1,
            duration: 0.05,
        }],
        ..ControlFaults::default()
    }
}

/// Online submission under an armed control-fault profile: pre-start
/// admission stays bit-for-bit offline (fault seeding is deferred
/// behind the submissions), and the resilience ledger records the
/// injected chaos.
#[test]
fn online_admission_under_control_faults_keeps_the_ledger() {
    let jobs = workload(12, 21);
    let config = sim_config(1e-3, 1, Some(chaos(7)));
    let offline = run_offline(SchedulerKind::GuritaLocal, &jobs, &config);
    let online = run_online(SchedulerKind::GuritaLocal, &jobs, &config);
    assert!(
        offline == online,
        "online path diverged from offline under control faults"
    );
    assert_eq!(online.jobs.len(), jobs.len(), "chaos must not lose jobs");
    assert!(online.control.messages_sent > 0, "channel exercised");
    assert_eq!(online.control.agent_crashes, 1);
    assert_eq!(online.control.agent_restarts, 1);
    assert_eq!(online.control.partitions, 1);
}

/// Mid-run admission under the same chaos profile: jobs streamed in
/// while agents crash and the coordinator partitions still all
/// complete, and the ledger shows the faults fired.
#[test]
fn mid_run_admission_survives_control_faults() {
    let jobs = workload(12, 33);
    let config = sim_config(1e-3, 1, Some(chaos(9)));
    let mut plane = SchedulerKind::GuritaLocal.build_plane();
    let fabric = fabric();
    let schedule = FaultSchedule::new();
    let mut engine = Engine::online(&fabric, &config, plane.as_mut(), &schedule)
        .expect("online engine construction failed");
    // Stream arrivals: admit each job only once virtual time reaches
    // its arrival, so admissions interleave with crash/partition events.
    for job in &jobs {
        let arrival = job.arrival();
        engine.submit_job(job.clone()).expect("admission failed");
        engine.run_until(arrival).expect("run_until failed");
    }
    engine.run_to_drained().expect("drain failed");
    let result = engine.finish();
    assert_eq!(
        result.jobs.len(),
        jobs.len(),
        "every admitted job completes"
    );
    assert_eq!(result.control.agent_crashes, 1);
    assert_eq!(result.control.partitions, 1);
    assert!(result.control.messages_sent > 0);
}
