//! Cross-scheduler behavioral tests: the qualitative orderings the
//! paper claims, verified end-to-end on the fat-tree simulator.

use gurita_experiments::metrics::improvement_factor;
use gurita_experiments::roster::SchedulerKind;
use gurita_experiments::scenario::Scenario;
use gurita_model::{units::MB, SizeCategory};
use gurita_workload::dags::StructureKind;

fn scenario(structure: StructureKind, jobs: usize, seed: u64) -> Scenario {
    let mut s = Scenario::trace_driven(structure, jobs, seed);
    // Keep the tail light so the suite runs quickly while preserving
    // the mice/elephant contrast the comparisons rely on.
    s.workload.category_weights = [0.40, 0.25, 0.15, 0.08, 0.12, 0.0, 0.0];
    s
}

#[test]
fn gurita_beats_pfs_on_the_trace_mix() {
    // Seed chosen (from a 30-seed scan) to give a clear margin over the
    // 1.1 threshold under the vendored RNG stream.
    let s = scenario(StructureKind::FbTao, 40, 3);
    let results = s.run_all(&[SchedulerKind::Gurita, SchedulerKind::Pfs]);
    let improvement = improvement_factor(results[1].avg_jct(), results[0].avg_jct());
    assert!(
        improvement > 1.1,
        "Gurita must clearly beat PFS, improvement {improvement:.2}"
    );
}

#[test]
fn gurita_tracks_aalo_without_global_view() {
    let s = scenario(StructureKind::TpcDs, 40, 12);
    let results = s.run_all(&[SchedulerKind::Gurita, SchedulerKind::Aalo]);
    let improvement = improvement_factor(results[1].avg_jct(), results[0].avg_jct());
    assert!(
        (0.6..=1.8).contains(&improvement),
        "Gurita should be comparable to centralized Aalo, improvement {improvement:.2}"
    );
}

#[test]
fn gurita_is_close_to_its_oracle() {
    let s = scenario(StructureKind::FbTao, 30, 13);
    let results = s.run_all(&[SchedulerKind::Gurita, SchedulerKind::GuritaPlus]);
    let ratio = results[1].avg_jct() / results[0].avg_jct();
    // Figure 8: the deployable estimator tracks the oracle closely.
    assert!(
        (0.5..=1.5).contains(&ratio),
        "Gurita vs GuritaPlus ratio {ratio:.2} out of band"
    );
}

#[test]
fn small_jobs_gain_most_under_gurita_vs_pfs() {
    // Figure 6's headline: categories I–II gain the most.
    let s = scenario(StructureKind::FbTao, 60, 14);
    let results = s.run_all(&[SchedulerKind::Gurita, SchedulerKind::Pfs]);
    let (g, p) = (&results[0], &results[1]);
    let small_g: Vec<f64> = g
        .jobs
        .iter()
        .filter(|j| j.category() <= SizeCategory::II)
        .map(|j| j.jct)
        .collect();
    let small_p: Vec<f64> = p
        .jobs
        .iter()
        .filter(|j| j.category() <= SizeCategory::II)
        .map(|j| j.jct)
        .collect();
    assert!(!small_g.is_empty());
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let small_improvement = avg(&small_p) / avg(&small_g);
    assert!(
        small_improvement > 1.2,
        "small jobs should gain clearly: {small_improvement:.2}"
    );
}

#[test]
fn stage_aware_beats_tbs_on_on_and_off_jobs() {
    // A hand-built on-and-off scenario: a deep job with one heavy early
    // stage and tiny later stages, plus a steady stream of mice that
    // contend with the later stages. Stream (TBS) keeps the deep job
    // demoted in its tiny stages; Gurita re-evaluates per stage, so the
    // deep job's JCT must be no worse under Gurita.
    use gurita_model::{CoflowSpec, FlowSpec, HostId, JobDag, JobSpec};
    use gurita_sim::runtime::{SimConfig, Simulation};
    use gurita_sim::topology::FatTree;

    let deep = JobSpec::new(
        0,
        0.0,
        vec![
            CoflowSpec::new(vec![FlowSpec::new(HostId(0), HostId(64), 400.0 * MB)]),
            CoflowSpec::new(vec![FlowSpec::new(HostId(64), HostId(65), 2.0 * MB)]),
            CoflowSpec::new(vec![FlowSpec::new(HostId(65), HostId(66), 2.0 * MB)]),
        ],
        JobDag::chain(3).unwrap(),
    )
    .unwrap();
    // Mice hammer the downlinks of hosts 65/66 while the deep job's
    // late stages need them.
    let mice: Vec<JobSpec> = (0..12)
        .map(|i| {
            JobSpec::new(
                1 + i,
                0.3 * i as f64,
                vec![CoflowSpec::new(vec![FlowSpec::new(
                    HostId(1 + i),
                    HostId(65 + (i % 2)),
                    30.0 * MB,
                )])],
                JobDag::chain(1).unwrap(),
            )
            .unwrap()
        })
        .collect();
    let mut jobs = vec![deep];
    jobs.extend(mice);

    let run = |kind: SchedulerKind| {
        let mut sim = Simulation::new(FatTree::new(8).unwrap(), SimConfig::default());
        let mut sched = kind.build();
        sim.run(jobs.clone(), sched.as_mut())
    };
    let gurita = run(SchedulerKind::Gurita);
    let stream = run(SchedulerKind::Stream);
    let deep_g = gurita.jobs.iter().find(|j| j.id.index() == 0).unwrap().jct;
    let deep_s = stream.jobs.iter().find(|j| j.id.index() == 0).unwrap().jct;
    assert!(
        deep_g <= deep_s * 1.05,
        "per-stage scheduling must not punish the on-and-off job: gurita {deep_g:.2} vs stream {deep_s:.2}"
    );
}

/// Runs `centralized` and `decentralized` over the byte-identical
/// workload and returns the pair with the scheduler labels cleared, so
/// the `RunResult`s can be compared field-for-field.
fn identity_pair(
    s: &Scenario,
    centralized: SchedulerKind,
    decentralized: SchedulerKind,
) -> (gurita_sim::stats::RunResult, gurita_sim::stats::RunResult) {
    let mut results = s.run_all(&[centralized, decentralized]);
    for r in &mut results {
        r.scheduler.clear();
    }
    let d = results.pop().unwrap();
    let c = results.pop().unwrap();
    (c, d)
}

#[test]
fn decentralized_gurita_at_zero_latency_is_result_identical() {
    let s = scenario(StructureKind::FbTao, 25, 3);
    let (c, d) = identity_pair(&s, SchedulerKind::Gurita, SchedulerKind::GuritaLocal);
    assert_eq!(
        c, d,
        "Gurita@local with control_latency 0 must replay Gurita exactly"
    );
}

#[test]
fn decentralized_aalo_at_zero_latency_is_result_identical() {
    let s = scenario(StructureKind::TpcDs, 25, 12);
    let (c, d) = identity_pair(&s, SchedulerKind::Aalo, SchedulerKind::AaloLocal);
    assert_eq!(
        c, d,
        "Aalo@local with control_latency 0 must replay Aalo exactly"
    );
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

    /// The tentpole identity, as a property over workloads: for any
    /// seed/size/structure, `Decentralized` at `control_latency == 0`
    /// produces bit-for-bit the `RunResult` of `Centralized` for both
    /// ported schemes — same JCTs, same CCTs, same makespan, same event
    /// count.
    #[test]
    fn zero_latency_identity_holds_for_ported_schemes(
        seed in 0u64..1000,
        jobs in 6usize..14,
        tpcds: bool,
    ) {
        let structure = if tpcds { StructureKind::TpcDs } else { StructureKind::FbTao };
        let s = scenario(structure, jobs, seed);
        for (c_kind, d_kind) in [
            (SchedulerKind::Gurita, SchedulerKind::GuritaLocal),
            (SchedulerKind::Aalo, SchedulerKind::AaloLocal),
        ] {
            let (c, d) = identity_pair(&s, c_kind, d_kind);
            proptest::prop_assert_eq!(&c, &d, "{:?} diverged at latency 0", d_kind);
        }
    }
}

#[test]
fn local_schemes_never_touch_the_oracle() {
    // The decentralized plane hands its head agent a denying oracle
    // that panics on any access (see `Oracle::deny`), so these runs
    // completing end-to-end *is* the proof that Gurita@local and
    // Aalo@local decide from local observations alone.
    let s = scenario(StructureKind::FbTao, 20, 5);
    let results = s.run_all(&[SchedulerKind::GuritaLocal, SchedulerKind::AaloLocal]);
    for r in &results {
        assert_eq!(r.jobs.len(), 20, "{} must complete every job", r.scheduler);
    }
}

#[test]
fn stale_control_still_completes_and_costs_something() {
    // With a 10 ms propagation delay hosts tag flows from stale
    // priority tables: every job must still finish, the event stream
    // gains the ControlUpdate deliveries, and the schedule can only be
    // distorted — avg JCT should not collapse below a sanity floor of
    // the fresh-view run.
    let fresh = scenario(StructureKind::FbTao, 25, 3);
    let mut stale = scenario(StructureKind::FbTao, 25, 3);
    stale.control_latency = 10e-3;
    let f = fresh.run(SchedulerKind::GuritaLocal);
    let s = stale.run(SchedulerKind::GuritaLocal);
    assert_eq!(s.jobs.len(), f.jobs.len(), "staleness must not lose jobs");
    assert!(
        s.events > f.events,
        "delayed tables must flow through ControlUpdate events: {} vs {}",
        s.events,
        f.events
    );
    assert!(
        s.avg_jct() > f.avg_jct() * 0.5,
        "stale control should not implausibly beat fresh control: {} vs {}",
        s.avg_jct(),
        f.avg_jct()
    );
}

#[test]
fn motivation_examples_hold() {
    let (fig2_tbs, fig2_stage) = gurita_experiments::motivation::figure2();
    assert!((fig2_tbs - 6.25).abs() < 1e-9);
    assert!(fig2_stage < fig2_tbs);
    let (fig4_blocking_first, fig4_blocked_first) = gurita_experiments::motivation::figure4();
    assert!((fig4_blocking_first - 4.25).abs() < 1e-12);
    assert!((fig4_blocked_first - 3.50).abs() < 1e-12);
}
