//! End-to-end tests of the `guritad` service: a real Unix socket, a
//! real serve loop on its own thread, and the typed [`Client`] — the
//! same path the `guritad`/`gctl` binaries exercise, minus process
//! spawning (so failures produce backtraces, not exit codes).

use gurita_daemon::client::Client;
use gurita_daemon::server::{serve, DaemonConfig, ServeReport};
use gurita_experiments::roster::SchedulerKind;
use gurita_model::{CoflowSpec, FlowSpec, HostId, JobDag, JobSpec};
use gurita_workload::arrivals::ArrivalProcess;
use gurita_workload::generator::{JobGenerator, WorkloadConfig};
use std::path::PathBuf;
use std::time::Duration;

/// Slow enough that a job submitted by the test is still in flight on
/// the next round-trip (an 8 MB flow lasts ~1.3 wall-seconds), fast
/// enough that a short chain finishes in a few seconds. `drain` lifts
/// the pace, so teardown is never the bottleneck.
const TEST_PACE: f64 = 0.005;

/// A daemon on a test-unique socket plus a connected client.
fn start(
    name: &str,
    scheduler: SchedulerKind,
    pace: f64,
) -> (
    PathBuf,
    std::thread::JoinHandle<std::io::Result<ServeReport>>,
    Client,
) {
    let socket =
        std::env::temp_dir().join(format!("guritad-test-{name}-{}.sock", std::process::id()));
    let config = DaemonConfig {
        socket: socket.clone(),
        hosts: 16,
        scheduler,
        pace,
        ..DaemonConfig::default()
    };
    let daemon = std::thread::spawn(move || serve(&config));
    let client =
        Client::connect_with_retry(&socket, Duration::from_secs(10)).expect("daemon must come up");
    (socket, daemon, client)
}

/// A small single-stage job: `flows` flows of `mb` MB on a host ring.
fn job(flows: usize, mb: f64) -> JobSpec {
    let specs = (0..flows)
        .map(|i| FlowSpec::new(HostId(i % 16), HostId((i + 1) % 16), mb * 1e6))
        .collect();
    JobSpec::new(
        0,
        0.0,
        vec![CoflowSpec::new(specs)],
        JobDag::chain(1).unwrap(),
    )
    .unwrap()
}

#[test]
fn dependency_chain_runs_in_order_and_drains() {
    let (_socket, daemon, mut client) = start("chain", SchedulerKind::Gurita, TEST_PACE);
    client.ping().expect("ping");

    // a ← b ← c, plus an independent d: the classic gqueue smoke.
    let a = client.submit("a", &[], &job(4, 8.0)).unwrap();
    assert!(a.state == "queued" || a.state == "running" || a.state == "done");
    let b = client.submit("b", &["a".into()], &job(4, 8.0)).unwrap();
    let c = client.submit("c", &["b".into()], &job(2, 4.0)).unwrap();
    assert_eq!(b.state, "held");
    assert_eq!(c.state, "held");
    client.submit("d", &[], &job(2, 4.0)).unwrap();

    // Mid-run view: all four known, dependencies reported.
    let q = client.queue().unwrap();
    assert_eq!(q.len(), 4);
    assert_eq!(q[2].depends_on, vec!["b".to_string()]);

    let c_done = client.wait("c", Duration::from_secs(60)).unwrap();
    assert_eq!(c_done.state, "done");

    let stats = client.drain().unwrap();
    assert_eq!(stats.jobs_done, 4, "drain accounts for every job");
    assert_eq!(stats.jobs_held + stats.jobs_queued + stats.jobs_running, 0);
    assert!(stats.drained);
    assert!(stats.makespan.unwrap() > 0.0);
    assert!(stats.avg_jct.unwrap() > 0.0);

    let report = daemon.join().unwrap().unwrap();
    assert_eq!(report.completed.len(), 4);
    // Dependency order is honored in completion order: a before b
    // before c.
    let pos = |n: &str| {
        report
            .completed
            .iter()
            .position(|(name, _, _)| name == n)
            .unwrap()
    };
    assert!(pos("a") < pos("b"), "parent completes before child");
    assert!(pos("b") < pos("c"));
}

#[test]
fn rejections_and_cancel_cascade() {
    let (_socket, daemon, mut client) = start("cancel", SchedulerKind::Pfs, TEST_PACE);

    client.submit("root", &[], &job(8, 64.0)).unwrap();
    client
        .submit("mid", &["root".into()], &job(2, 1.0))
        .unwrap();
    client
        .submit("leaf", &["mid".into()], &job(2, 1.0))
        .unwrap();
    client.submit("solo", &[], &job(2, 1.0)).unwrap();

    // Protocol-level rejections surface as errors, connection intact.
    assert!(
        client.submit("root", &[], &job(1, 1.0)).is_err(),
        "dup name"
    );
    assert!(
        client.submit("x", &["ghost".into()], &job(1, 1.0)).is_err(),
        "unknown dependency"
    );
    client.ping().expect("connection survives rejections");

    // Cancelling the (large, still-running) root cascades to held
    // descendants but leaves the independent job alone.
    let root = client.cancel("root").unwrap();
    assert_eq!(root.state, "cancelled");
    assert_eq!(client.status("mid").unwrap().state, "cancelled");
    assert_eq!(client.status("leaf").unwrap().state, "cancelled");
    assert!(client.cancel("root").is_err(), "double cancel rejected");

    let stats = client.drain().unwrap();
    assert_eq!(stats.jobs_cancelled, 3);
    assert_eq!(stats.jobs_done, 1, "solo still completes");
    daemon.join().unwrap().unwrap();
}

/// Observability end to end: a daemon with `--trace-out` and
/// `--metrics-out` answers live `metrics` queries over the socket
/// mid-session, and on drain flushes all three artifacts — the JSONL
/// event stream, the Chrome trace, and the final registry snapshot.
#[test]
fn metrics_and_traces_flush_on_drain() {
    let dir = std::env::temp_dir().join(format!("guritad-obs-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let prefix = dir.join("svc");
    let metrics_path = dir.join("daemon_metrics.json");
    let socket = dir.join("guritad.sock");
    let config = DaemonConfig {
        socket: socket.clone(),
        hosts: 16,
        scheduler: SchedulerKind::Gurita,
        pace: TEST_PACE,
        trace_out: Some(prefix.clone()),
        metrics_out: Some(metrics_path.clone()),
        ..DaemonConfig::default()
    };
    let daemon = std::thread::spawn(move || serve(&config));
    let mut client =
        Client::connect_with_retry(&socket, Duration::from_secs(10)).expect("daemon must come up");

    client.submit("a", &[], &job(4, 8.0)).unwrap();
    client.submit("b", &["a".into()], &job(2, 4.0)).unwrap();
    client.wait("b", Duration::from_secs(60)).unwrap();

    // Live registry snapshot over the socket, while the daemon runs.
    let snap = client.metrics().unwrap();
    assert!(snap.family("gurita_jct_seconds").is_some(), "jct family");
    assert!(
        snap.family("gurita_engine_events_per_sec").is_some(),
        "health gauges registered"
    );
    let done = snap
        .family("gurita_jobs_completed_total")
        .expect("completion counter")
        .series[0]
        .value;
    assert_eq!(done, 2.0, "both jobs visible in live metrics");
    let jct: u64 = snap
        .family("gurita_jct_seconds")
        .unwrap()
        .series
        .iter()
        .filter_map(|s| s.histogram.as_ref())
        .map(|h| h.count)
        .sum();
    assert_eq!(jct, 2, "JCT distribution covers both jobs");

    let stats = client.drain().unwrap();
    assert_eq!(stats.jobs_done, 2);
    daemon.join().unwrap().unwrap();

    // Flush-on-shutdown: every artifact present and parseable.
    let events =
        std::fs::read_to_string(format!("{}.events.jsonl", prefix.display())).expect("jsonl");
    assert!(events.lines().count() > 0, "event stream is empty");
    for line in events.lines() {
        let rec: serde::Value = serde_json::from_str(line).expect("jsonl line parses");
        let serde::Value::Map(fields) = rec else {
            panic!("record is not an object: {line}");
        };
        assert_eq!(fields.len(), 1, "record not externally tagged: {line}");
    }
    let trace =
        std::fs::read_to_string(format!("{}.trace.json", prefix.display())).expect("chrome trace");
    assert!(trace.contains("traceEvents"), "chrome trace malformed");
    let snap_text = std::fs::read_to_string(&metrics_path).expect("metrics snapshot");
    let snap_json: serde::Value = serde_json::from_str(&snap_text).expect("snapshot parses");
    let serde::Value::Map(top) = snap_json else {
        panic!("snapshot is not an object");
    };
    assert!(top.iter().any(|(k, _)| k == "families"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_stops_immediately() {
    let (socket, daemon, mut client) = start("shutdown", SchedulerKind::Gurita, TEST_PACE);
    client.submit("j", &[], &job(8, 512.0)).unwrap();
    client.shutdown().unwrap();
    let report = daemon.join().unwrap().unwrap();
    // The big job was abandoned mid-flight, not completed.
    assert_eq!(report.stats.jobs_done, 0);
    assert!(!socket.exists(), "socket file cleaned up");
}

/// The scale acceptance run: ≥1,000 generated jobs with dependency
/// edges over the socket, mid-run queries, and a drain that accounts
/// for every job. Ignored by default (several seconds); CI runs the
/// release-mode `online_arrivals` binary for the same coverage, and
/// `cargo test -p gurita-integration-tests -- --ignored daemon` runs
/// this in-process version.
#[test]
#[ignore = "scale run: covered in CI by the online_arrivals binary"]
fn thousand_jobs_over_the_socket() {
    let (_socket, daemon, mut client) = start("thousand", SchedulerKind::Gurita, 0.0);
    let workload = WorkloadConfig {
        num_jobs: 1000,
        num_hosts: 16,
        arrivals: ArrivalProcess::Bursty {
            burst_size: 8,
            intra_gap: 2e-6,
            inter_gap: 0.05,
        },
        category_weights: [0.6, 0.3, 0.1, 0.0, 0.0, 0.0, 0.0],
        ..WorkloadConfig::default()
    };
    let mut held = 0usize;
    for (i, spec) in JobGenerator::new(workload, 4242).stream().enumerate() {
        let name = format!("j{i:04}");
        let deps: Vec<String> = if i > 0 && i % 4 == 0 {
            vec![format!("j{:04}", i - 1)]
        } else {
            Vec::new()
        };
        let view = client.submit(&name, &deps, &spec).unwrap();
        if view.state == "held" {
            held += 1;
        }
        if i % 200 == 199 {
            assert_eq!(client.queue().unwrap().len(), i + 1);
        }
    }
    assert!(held > 0, "the gate was exercised");
    let stats = client.drain().unwrap();
    assert_eq!(stats.jobs_done, 1000, "drain accounts for all 1000 jobs");
    assert_eq!(stats.jobs_cancelled, 0);
    daemon.join().unwrap().unwrap();
}
