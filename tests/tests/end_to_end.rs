//! End-to-end integration: every scheduler drains every workload, and
//! basic accounting invariants hold across the full stack
//! (workload generation → fat-tree simulation → results).

use gurita_experiments::roster::SchedulerKind;
use gurita_model::JobSpec;
use gurita_sim::runtime::{SimConfig, Simulation};
use gurita_sim::topology::{Fabric, FatTree};
use gurita_workload::arrivals::ArrivalProcess;
use gurita_workload::dags::StructureKind;
use gurita_workload::generator::{JobGenerator, WorkloadConfig};

fn workload(structure: StructureKind, n: usize, seed: u64) -> Vec<JobSpec> {
    JobGenerator::new(
        WorkloadConfig {
            num_jobs: n,
            num_hosts: 128,
            structure,
            // Trim the elephant tail so the suite stays fast.
            category_weights: [0.45, 0.3, 0.15, 0.05, 0.05, 0.0, 0.0],
            ..WorkloadConfig::default()
        },
        seed,
    )
    .generate()
}

fn run(kind: SchedulerKind, jobs: Vec<JobSpec>) -> gurita_sim::stats::RunResult {
    let mut sim = Simulation::new(FatTree::new(8).unwrap(), SimConfig::default());
    let mut sched = kind.build();
    sim.run(jobs, sched.as_mut())
}

#[test]
fn every_scheduler_drains_the_fb_tao_workload() {
    let jobs = workload(StructureKind::FbTao, 15, 1);
    let expected_coflows: usize = jobs.iter().map(|j| j.coflows().len()).sum();
    for kind in [
        SchedulerKind::Gurita,
        SchedulerKind::GuritaPlus,
        SchedulerKind::Pfs,
        SchedulerKind::Baraat,
        SchedulerKind::Stream,
        SchedulerKind::Aalo,
        SchedulerKind::VarysSebf,
    ] {
        let res = run(kind, jobs.clone());
        assert_eq!(res.jobs.len(), 15, "{kind:?} lost jobs");
        assert_eq!(res.coflows.len(), expected_coflows, "{kind:?} lost coflows");
        assert!(res.avg_jct() > 0.0);
        assert!(res.makespan >= res.jobs.iter().map(|j| j.jct).fold(0.0, f64::max));
    }
}

#[test]
fn bytes_are_conserved_through_the_stack() {
    let jobs = workload(StructureKind::TpcDs, 10, 2);
    let total: f64 = jobs.iter().map(|j| j.total_bytes()).sum();
    let res = run(SchedulerKind::Gurita, jobs);
    let delivered: f64 = res.coflows.iter().map(|c| c.bytes).sum();
    assert!(
        (delivered - total).abs() / total < 1e-9,
        "delivered {delivered} vs generated {total}"
    );
}

#[test]
fn jct_is_bounded_below_by_the_critical_path() {
    // No schedule can beat the uncontended critical path at line rate.
    let jobs = workload(StructureKind::ProductionMix, 10, 3);
    let fabric = FatTree::new(8).unwrap();
    let line_rate = fabric.link_capacity(gurita_sim::topology::LinkId(0));
    let bounds: Vec<f64> = jobs
        .iter()
        .map(|j| j.ideal_critical_path_time(line_rate))
        .collect();
    for kind in [
        SchedulerKind::Gurita,
        SchedulerKind::Aalo,
        SchedulerKind::Pfs,
    ] {
        let res = run(kind, jobs.clone());
        for job in &res.jobs {
            let bound = bounds[job.id.index()];
            assert!(
                job.jct >= bound - 1e-6,
                "{kind:?} job {} finished in {} < critical-path bound {}",
                job.id,
                job.jct,
                bound
            );
        }
    }
}

#[test]
fn completion_respects_dag_order() {
    let jobs = workload(StructureKind::TpcDs, 6, 4);
    let res = run(SchedulerKind::Gurita, jobs.clone());
    for job in &jobs {
        let dag = job.dag();
        let completion_of = |v: usize| {
            res.coflows
                .iter()
                .find(|c| c.job == job.id() && c.dag_vertex == v)
                .expect("every coflow completes")
        };
        for v in 0..dag.num_vertices() {
            let parent = completion_of(v);
            for &child in dag.children(v) {
                let child_rec = completion_of(child);
                assert!(
                    child_rec.completed_at <= parent.activated_at + 1e-9,
                    "child {child} must complete before parent {v} activates"
                );
            }
        }
    }
}

#[test]
fn bursty_arrivals_complete_under_all_paper_schedulers() {
    let jobs = JobGenerator::new(
        WorkloadConfig {
            num_jobs: 20,
            num_hosts: 128,
            structure: StructureKind::FbTao,
            arrivals: ArrivalProcess::Bursty {
                burst_size: 10,
                intra_gap: 2e-6,
                inter_gap: 2.0,
            },
            category_weights: [0.5, 0.3, 0.2, 0.0, 0.0, 0.0, 0.0],
            ..WorkloadConfig::default()
        },
        5,
    )
    .generate();
    for kind in SchedulerKind::PAPER_SET {
        let res = run(kind, jobs.clone());
        assert_eq!(res.jobs.len(), 20, "{kind:?}");
    }
}

#[test]
fn identical_seeds_reproduce_identical_results() {
    let a = run(SchedulerKind::Gurita, workload(StructureKind::FbTao, 8, 9));
    let b = run(SchedulerKind::Gurita, workload(StructureKind::FbTao, 8, 9));
    assert_eq!(a.jobs.len(), b.jobs.len());
    for (x, y) in a.jobs.iter().zip(&b.jobs) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.jct, y.jct);
    }
    assert_eq!(a.events, b.events);
}
