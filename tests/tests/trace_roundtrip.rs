//! Workload persistence: a workload exported to JSON and re-imported
//! replays to byte-identical scheduling results, and the FB benchmark
//! text format interoperates.

use gurita_experiments::roster::SchedulerKind;
use gurita_sim::runtime::{SimConfig, Simulation};
use gurita_sim::topology::FatTree;
use gurita_workload::dags::StructureKind;
use gurita_workload::generator::{JobGenerator, WorkloadConfig};
use gurita_workload::trace;

fn small_workload(seed: u64) -> Vec<gurita_model::JobSpec> {
    JobGenerator::new(
        WorkloadConfig {
            num_jobs: 8,
            num_hosts: 128,
            structure: StructureKind::ProductionMix,
            category_weights: [0.5, 0.3, 0.2, 0.0, 0.0, 0.0, 0.0],
            ..WorkloadConfig::default()
        },
        seed,
    )
    .generate()
}

#[test]
fn json_reimport_replays_identically() {
    let jobs = small_workload(21);
    let json = trace::to_json(&jobs).unwrap();
    let reimported = trace::from_json(&json).unwrap();

    let run = |jobs: Vec<gurita_model::JobSpec>| {
        let mut sim = Simulation::new(FatTree::new(8).unwrap(), SimConfig::default());
        let mut sched = SchedulerKind::Gurita.build();
        sim.run(jobs, sched.as_mut())
    };
    let a = run(jobs);
    let b = run(reimported);
    assert_eq!(a.jobs.len(), b.jobs.len());
    for (x, y) in a.jobs.iter().zip(&b.jobs) {
        assert_eq!(x.id, y.id);
        // Sub-ULP JSON float rounding can shift event times minutely.
        assert!(
            (x.jct - y.jct).abs() < 1e-6 * x.jct.max(1.0),
            "{} vs {}",
            x.jct,
            y.jct
        );
    }
}

#[test]
fn fb_text_export_is_replayable() {
    let jobs = small_workload(22);
    let text = trace::to_fb_text(&jobs);
    let singles = trace::from_fb_text(&text).unwrap();
    // One record per coflow.
    let expected: usize = jobs.iter().map(|j| j.coflows().len()).sum();
    assert_eq!(singles.len(), expected);
    // The flattened single-stage trace replays cleanly.
    let mut sim = Simulation::new(FatTree::new(8).unwrap(), SimConfig::default());
    let mut sched = SchedulerKind::Aalo.build();
    let res = sim.run(singles, sched.as_mut());
    assert_eq!(res.jobs.len(), expected);
}
