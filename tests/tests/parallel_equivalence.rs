//! The intra-run parallelism determinism contract, property-tested:
//! `SimConfig::threads` must never change a [`RunResult`] — not to a
//! tolerance, **bit-for-bit** (`RunResult` equality, which covers every
//! completion time, rate-derived statistic, fault record, and counter).
//!
//! Why exact equality is the right bar (and not the 1e-9 bound the
//! incremental-vs-full tests use): at every thread count the engine
//! waterfills the same per-component subproblems — serial mode loops
//! over the components, parallel mode fans them across the pool — and
//! each per-component call is a pure function of its component's
//! demands. Parallelism only reorders *which thread* computes a
//! component, never what any component computes, so the merged rates
//! are structurally identical. The matrix crosses thread counts
//! {2, 4, 8} with SPQ and WRR disciplines, mid-run fabric faults,
//! decentralized control latencies {0, 1 ms, 10 ms}, and an armed
//! telemetry layer (composing the zero-overhead and zero-thread-drift
//! contracts).

use gurita_experiments::roster::SchedulerKind;
use gurita_experiments::scenario::Scenario;
use gurita_model::{HostId, JobSpec};
use gurita_sim::faults::{FaultEvent, FaultSchedule};
use gurita_sim::runtime::{SimConfig, Simulation};
use gurita_sim::stats::RunResult;
use gurita_sim::telemetry::{MemorySink, TelemetryConfig};
use gurita_sim::topology::{FatTree, LinkId};
use gurita_workload::dags::StructureKind;
use gurita_workload::generator::{JobGenerator, WorkloadConfig};
use proptest::prelude::*;

fn workload(num_jobs: usize, seed: u64) -> Vec<JobSpec> {
    JobGenerator::new(
        WorkloadConfig {
            num_jobs,
            num_hosts: 128,
            structure: StructureKind::FbTao,
            category_weights: [0.5, 0.3, 0.2, 0.0, 0.0, 0.0, 0.0],
            ..WorkloadConfig::default()
        },
        seed,
    )
    .generate()
}

/// Brown-outs plus a hard link failure/recovery, so reroute, park, and
/// overlay-scaled capacities all land inside the parallel window.
fn chaos_schedule() -> FaultSchedule {
    let mut faults = FaultSchedule::new();
    for i in 0..6 {
        let host = HostId((i * 37) % 128);
        faults.push(0.1, FaultEvent::BrownoutHost { host, factor: 0.4 });
        faults.push(0.9, FaultEvent::RestoreHost { host });
    }
    faults.push(0.2, FaultEvent::FailLink { link: LinkId(300) });
    faults.push(0.8, FaultEvent::RecoverLink { link: LinkId(300) });
    faults
}

fn run_once(
    kind: SchedulerKind,
    jobs: &[JobSpec],
    faults: &FaultSchedule,
    control_latency: f64,
    threads: usize,
    telemetry: bool,
) -> RunResult {
    run_once_cfg(
        kind,
        jobs,
        faults,
        control_latency,
        threads,
        telemetry,
        false,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_once_cfg(
    kind: SchedulerKind,
    jobs: &[JobSpec],
    faults: &FaultSchedule,
    control_latency: f64,
    threads: usize,
    telemetry: bool,
    force_full: bool,
) -> RunResult {
    let mut sim = Simulation::new(
        FatTree::new(8).unwrap(),
        SimConfig {
            control_latency,
            threads,
            telemetry: telemetry.then(TelemetryConfig::default),
            force_full_recompute: force_full,
            collect_link_stats: force_full, // exercise byte accounting too
            ..SimConfig::default()
        },
    );
    let mut plane = kind.build_plane();
    if telemetry {
        let mut sink = MemorySink::new();
        sim.try_run_control_with_faults_traced(jobs.to_vec(), plane.as_mut(), faults, &mut sink)
            .unwrap()
    } else {
        sim.try_run_control_with_faults(jobs.to_vec(), plane.as_mut(), faults)
            .unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Serial (`threads = 1`) vs pooled (`threads ∈ {2, 4, 8}`) runs
    /// must produce bit-for-bit identical [`RunResult`]s across
    /// scheduler kind (SPQ-based Gurita, WRR ablation, decentralized
    /// Gurita@local), control latency, mid-run faults, and the armed
    /// telemetry layer.
    #[test]
    fn parallel_runs_match_serial_bitwise(
        seed in 0u64..1_000,
        jobs in 6usize..14,
        kind_idx in 0usize..3,
        latency_idx in 0usize..3,
        with_faults in 0usize..2,
        telemetry in 0usize..2,
    ) {
        let (with_faults, telemetry) = (with_faults == 1, telemetry == 1);
        let kinds = [
            SchedulerKind::Gurita,
            SchedulerKind::GuritaSpq,
            SchedulerKind::GuritaLocal,
        ];
        let latencies = [0.0, 0.001, 0.01];
        let kind = kinds[kind_idx];
        let latency = latencies[latency_idx];
        let jobs = workload(jobs, seed);
        let faults = if with_faults {
            chaos_schedule()
        } else {
            FaultSchedule::new()
        };
        let serial = run_once(kind, &jobs, &faults, latency, 1, telemetry);
        for threads in [2usize, 4, 8] {
            let parallel = run_once(kind, &jobs, &faults, latency, threads, telemetry);
            prop_assert!(
                serial == parallel,
                "threads={threads} diverged from serial for {kind:?} \
                 (latency {latency}, faults {with_faults}, telemetry {telemetry})"
            );
        }
    }

    /// Same contract with `force_full_recompute` on: every event now
    /// triggers a *full* pass, which since PR 9 flows through the same
    /// per-component collection and fan-out as incremental epochs (the
    /// pool fans components or streams the discovery BFS against the
    /// waterfill). `collect_link_stats` rides along so the fanned
    /// advance's chunk-ordered byte merge is pinned on the same runs.
    /// Crosses SPQ-based Gurita, the WRR ablation, and decentralized
    /// Gurita@local with mid-run faults — threads {2, 4, 8} must stay
    /// bit-for-bit equal to serial.
    #[test]
    fn forced_full_passes_match_serial_bitwise(
        seed in 0u64..1_000,
        jobs in 6usize..12,
        kind_idx in 0usize..3,
        with_faults in 0usize..2,
    ) {
        let with_faults = with_faults == 1;
        let kinds = [
            SchedulerKind::Gurita,
            SchedulerKind::GuritaSpq,
            SchedulerKind::GuritaLocal,
        ];
        let kind = kinds[kind_idx];
        let jobs = workload(jobs, seed);
        let faults = if with_faults {
            chaos_schedule()
        } else {
            FaultSchedule::new()
        };
        let serial = run_once_cfg(kind, &jobs, &faults, 0.0, 1, false, true);
        for threads in [2usize, 4, 8] {
            let parallel = run_once_cfg(kind, &jobs, &faults, 0.0, threads, false, true);
            prop_assert!(
                serial == parallel,
                "forced-full threads={threads} diverged from serial for {kind:?} \
                 (faults {with_faults})"
            );
        }
    }
}

/// The auto setting (`threads = 0`) resolves to the host's core count
/// and must obey the same contract — pinned deterministically through
/// the [`Scenario`] plumbing the experiment binaries use.
/// Oversubscription (`threads` far beyond the core count) is taken
/// literally and must still be bit-for-bit: determinism cannot depend
/// on workers actually running concurrently.
#[test]
fn oversubscribed_threads_match_serial() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let jobs = workload(8, 77);
    let serial = run_once(
        SchedulerKind::Gurita,
        &jobs,
        &FaultSchedule::new(),
        0.0,
        1,
        false,
    );
    let oversubscribed = run_once(
        SchedulerKind::Gurita,
        &jobs,
        &FaultSchedule::new(),
        0.0,
        cores + 8,
        false,
    );
    assert!(
        serial == oversubscribed,
        "threads={} diverged from serial",
        cores + 8
    );
}

#[test]
fn scenario_threads_auto_matches_serial() {
    let serial = Scenario::trace_driven(StructureKind::FbTao, 10, 33).run(SchedulerKind::Gurita);
    let mut auto = Scenario::trace_driven(StructureKind::FbTao, 10, 33);
    auto.threads = 0;
    let parallel = auto.run(SchedulerKind::Gurita);
    assert!(
        serial == parallel,
        "auto-threaded scenario run diverged from serial"
    );
}
