//! Property-based tests (proptest) over the core invariants.

use gurita::starvation::wrr_weights;
use gurita_model::{CoflowSpec, FlowSpec, HostId, JobDag, JobSpec, SizeCategory};
use gurita_sim::bandwidth::{allocate, Demand, Discipline};
use gurita_sim::runtime::{SimConfig, Simulation};
use gurita_sim::sched::FifoScheduler;
use gurita_sim::thresholds::ThresholdLadder;
use gurita_sim::topology::{BigSwitch, Fabric, FatTree, LinkId};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_paths(max_links: usize) -> impl Strategy<Value = Vec<(Vec<usize>, usize)>> {
    // Up to 24 flows, each with 1..=4 distinct links and a queue 0..3.
    prop::collection::vec(
        (prop::collection::btree_set(0..max_links, 1..=4), 0usize..3),
        1..24,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(links, q)| (links.into_iter().collect(), q))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Water-filling never oversubscribes a link and never produces a
    /// negative or non-finite rate, under both service disciplines.
    #[test]
    fn allocation_is_feasible(paths in arb_paths(12), cap in 1.0f64..100.0) {
        let links: Vec<Vec<LinkId>> = paths
            .iter()
            .map(|(ls, _)| ls.iter().map(|&l| LinkId(l)).collect())
            .collect();
        let demands: Vec<Demand<'_>> = links
            .iter()
            .zip(&paths)
            .map(|(ls, (_, q))| Demand { path: ls, queue: *q })
            .collect();
        for disc in [
            Discipline::StrictPriority { num_queues: 3 },
            Discipline::WeightedRoundRobin { weights: vec![4.0, 2.0, 1.0] },
        ] {
            let rates = allocate(&demands, |_| cap, &disc);
            let mut usage: HashMap<usize, f64> = HashMap::new();
            for (d, r) in demands.iter().zip(&rates) {
                prop_assert!(r.is_finite() && *r >= 0.0, "rate {r}");
                for l in d.path {
                    *usage.entry(l.index()).or_insert(0.0) += r;
                }
            }
            for (&l, &u) in &usage {
                prop_assert!(u <= cap * (1.0 + 1e-9) + 1e-9, "link {l}: {u} > {cap}");
            }
        }
    }

    /// Max-min property (single class): every flow is bottlenecked at
    /// some saturated link.
    #[test]
    fn allocation_is_bottleneck_tight(paths in arb_paths(8), cap in 1.0f64..50.0) {
        let links: Vec<Vec<LinkId>> = paths
            .iter()
            .map(|(ls, _)| ls.iter().map(|&l| LinkId(l)).collect())
            .collect();
        let demands: Vec<Demand<'_>> = links
            .iter()
            .map(|ls| Demand { path: ls, queue: 0 })
            .collect();
        let disc = Discipline::StrictPriority { num_queues: 1 };
        let rates = allocate(&demands, |_| cap, &disc);
        let mut usage: HashMap<usize, f64> = HashMap::new();
        for (d, r) in demands.iter().zip(&rates) {
            for l in d.path {
                *usage.entry(l.index()).or_insert(0.0) += r;
            }
        }
        for d in &demands {
            let tight = d.path.iter().any(|l| usage[&l.index()] >= cap - 1e-6);
            prop_assert!(tight, "a flow has slack on every link");
        }
    }

    /// Every DAG the model accepts is acyclic with consistent stages:
    /// children sit in strictly earlier stages than their parents, and
    /// the topological order respects dependencies.
    #[test]
    fn dag_stages_are_consistent(
        n in 1usize..12,
        edges in prop::collection::vec((0usize..12, 0usize..12), 0..24)
    ) {
        let edges: Vec<(usize, usize)> = edges
            .into_iter()
            .filter(|&(c, p)| c < n && p < n && c != p)
            .collect();
        if let Ok(dag) = JobDag::new(n, &edges) {
            let mut pos = vec![0usize; n];
            for (i, &v) in dag.topo_order().iter().enumerate() {
                pos[v] = i;
            }
            for v in 0..n {
                for &c in dag.children(v) {
                    prop_assert!(dag.stage_of(c) < dag.stage_of(v));
                    prop_assert!(pos[c] < pos[v]);
                }
            }
            // Stage partition covers all vertices exactly once.
            let total: usize = (0..dag.num_stages())
                .map(|s| dag.vertices_in_stage(s).len())
                .sum();
            prop_assert_eq!(total, n);
            // Critical path weight >= any single vertex weight.
            let weights: Vec<f64> = (0..n).map(|v| 1.0 + v as f64).collect();
            let (w, path) = dag.critical_path(&weights);
            prop_assert!(!path.is_empty());
            for &wv in &weights {
                prop_assert!(w >= wv - 1e-9);
            }
        }
    }

    /// The category classifier is monotone in bytes and total.
    #[test]
    fn categories_are_monotone(a in 0.0f64..5e12, b in 0.0f64..5e12) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(SizeCategory::of_bytes(lo) <= SizeCategory::of_bytes(hi));
    }

    /// Threshold ladders are monotone: larger values never map to a
    /// higher-priority (smaller-index) queue.
    #[test]
    fn ladder_is_monotone(base in 1.0f64..1e6, factor in 1.01f64..50.0, q in 1usize..8) {
        let ladder = ThresholdLadder::exponential(q, base, factor);
        let mut last = 0usize;
        for i in 0..30 {
            let v = base * 1.7f64.powi(i - 5);
            let cur = ladder.queue_for(v);
            prop_assert!(cur >= last);
            prop_assert!(cur < q);
            last = cur;
        }
    }

    /// WRR weights from arbitrary load vectors are a valid distribution
    /// that favors higher-priority queues under equal loads.
    #[test]
    fn wrr_weights_are_valid(loads in prop::collection::vec(0.0f64..10.0, 2..8)) {
        let w = wrr_weights(&loads);
        prop_assert_eq!(w.len(), loads.len());
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for &x in &w {
            prop_assert!(x > 0.0 && x.is_finite());
        }
    }

    /// ECMP paths are well-formed for random host pairs on random-size
    /// fat-trees: correct length by locality, in-range links, endpoints
    /// anchored at the right host links.
    #[test]
    fn fat_tree_paths_are_well_formed(k in 1usize..6, s in 0usize..500, d in 0usize..500, salt: u64) {
        let k = k * 2; // even pod count
        let ft = FatTree::new(k).unwrap();
        let h = ft.num_hosts();
        let (s, d) = (s % h, d % h);
        let path = ft.path(HostId(s), HostId(d), salt).unwrap();
        if s == d {
            prop_assert!(path.is_empty());
        } else {
            prop_assert!(matches!(path.len(), 2 | 4 | 6));
            prop_assert_eq!(path[0], LinkId(s));
            prop_assert_eq!(*path.last().unwrap(), LinkId(h + d));
            for l in &path {
                prop_assert!(l.index() < ft.num_links());
            }
        }
    }

    /// Single-link fluid exactness: n equal flows into one receiver
    /// finish together at n * size / capacity.
    #[test]
    fn fair_share_completion_is_exact(n in 1usize..6, mbs in 1.0f64..20.0) {
        let cap = 1.0e6;
        let bytes = mbs * 1.0e6;
        let jobs: Vec<JobSpec> = (0..n)
            .map(|i| {
                JobSpec::new(
                    i,
                    0.0,
                    vec![CoflowSpec::new(vec![FlowSpec::new(
                        HostId(i),
                        HostId(7),
                        bytes,
                    )])],
                    JobDag::chain(1).unwrap(),
                )
                .unwrap()
            })
            .collect();
        let mut sim = Simulation::new(BigSwitch::new(8, cap), SimConfig::default());
        let res = sim.run(jobs, &mut FifoScheduler::new(1));
        let expected = n as f64 * bytes / cap;
        for j in &res.jobs {
            prop_assert!((j.jct - expected).abs() < 1e-6 * expected.max(1.0),
                "jct {} expected {}", j.jct, expected);
        }
    }
}
