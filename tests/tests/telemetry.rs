//! Telemetry-layer integration tests: arming the probe must never
//! change simulation results (bit-for-bit, property-tested across
//! disciplines, faults, and control latency), traces must be
//! well-formed, and the starvation watch must reproduce the paper's §V
//! SPQ-vs-WRR contrast.

use gurita_experiments::roster::SchedulerKind;
use gurita_experiments::scenario::Scenario;
use gurita_metrics::Registry;
use gurita_model::{HostId, JobSpec};
use gurita_sim::faults::{FaultEvent, FaultSchedule};
use gurita_sim::metrics::{MetricsConfig, MetricsSink};
use gurita_sim::runtime::{SimConfig, Simulation};
use gurita_sim::stats::RunResult;
use gurita_sim::telemetry::{ChromeTraceSink, MemorySink, TelemetryConfig, TraceRecord};
use gurita_sim::topology::{FatTree, LinkId};
use gurita_workload::dags::StructureKind;
use gurita_workload::generator::{JobGenerator, WorkloadConfig};
use proptest::prelude::*;
use std::sync::Arc;

fn workload(num_jobs: usize, seed: u64) -> Vec<JobSpec> {
    JobGenerator::new(
        WorkloadConfig {
            num_jobs,
            num_hosts: 128,
            structure: StructureKind::FbTao,
            category_weights: [0.5, 0.3, 0.2, 0.0, 0.0, 0.0, 0.0],
            ..WorkloadConfig::default()
        },
        seed,
    )
    .generate()
}

/// A schedule mixing brown-outs with hard link failure/recovery, so the
/// probe's park/resume/reroute paths are all exercised.
fn chaos_schedule() -> FaultSchedule {
    let mut faults = FaultSchedule::new();
    for i in 0..8 {
        let host = HostId((i * 37) % 128);
        faults.push(0.1, FaultEvent::BrownoutHost { host, factor: 0.3 });
        faults.push(1.0, FaultEvent::RestoreHost { host });
    }
    faults.push(0.2, FaultEvent::FailLink { link: LinkId(300) });
    faults.push(0.9, FaultEvent::RecoverLink { link: LinkId(300) });
    faults
}

fn run_once(
    kind: SchedulerKind,
    jobs: &[JobSpec],
    faults: &FaultSchedule,
    control_latency: f64,
    sink: Option<&mut MemorySink>,
) -> RunResult {
    let mut sim = Simulation::new(
        FatTree::new(8).unwrap(),
        SimConfig {
            control_latency,
            telemetry: sink.is_some().then(TelemetryConfig::default),
            ..SimConfig::default()
        },
    );
    let mut plane = kind.build_plane();
    match sink {
        Some(sink) => sim
            .try_run_control_with_faults_traced(jobs.to_vec(), plane.as_mut(), faults, sink)
            .unwrap(),
        None => sim
            .try_run_control_with_faults(jobs.to_vec(), plane.as_mut(), faults)
            .unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The zero-overhead contract: a run with the telemetry layer armed
    /// produces a bit-for-bit identical [`RunResult`] to the same run
    /// without it — under SPQ and WRR service, mid-run faults, and
    /// nonzero control latency.
    #[test]
    fn armed_telemetry_never_changes_results(
        seed in 0u64..1000,
        latency_step in 0usize..3,
    ) {
        let jobs = workload(6, seed);
        let faults = chaos_schedule();
        let latency = [0.0, 0.002, 0.008][latency_step];
        // WRR, SPQ, and the decentralized plane (the only one that
        // defers tables through ControlUpdate events, where latency
        // actually bites).
        for kind in [
            SchedulerKind::Gurita,
            SchedulerKind::GuritaSpq,
            SchedulerKind::GuritaLocal,
        ] {
            let plain = run_once(kind, &jobs, &faults, latency, None);
            let mut sink = MemorySink::new();
            let traced = run_once(kind, &jobs, &faults, latency, Some(&mut sink));
            prop_assert_eq!(&plain, &traced, "telemetry changed the result");
            prop_assert!(!sink.records.is_empty(), "armed run emitted no records");
        }
    }
}

/// Like [`run_once`] with telemetry armed, but streaming into a live
/// [`MetricsSink`] — the daemon's aggregation path.
fn run_with_metrics(
    kind: SchedulerKind,
    jobs: &[JobSpec],
    faults: &FaultSchedule,
    control_latency: f64,
    sink: &mut MetricsSink,
) -> RunResult {
    let mut sim = Simulation::new(
        FatTree::new(8).unwrap(),
        SimConfig {
            control_latency,
            telemetry: Some(TelemetryConfig::default()),
            ..SimConfig::default()
        },
    );
    let mut plane = kind.build_plane();
    sim.try_run_control_with_faults_traced(jobs.to_vec(), plane.as_mut(), faults, sink)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The purely-observational contract of the live-metrics bridge: a
    /// run aggregating into an armed [`MetricsSink`] produces a
    /// bit-for-bit identical [`RunResult`] to the untraced run, and the
    /// registry's completion counters agree with the result.
    #[test]
    fn armed_metrics_sink_never_changes_results(
        seed in 0u64..1000,
        latency_step in 0usize..3,
    ) {
        let jobs = workload(6, seed);
        let faults = chaos_schedule();
        let latency = [0.0, 0.002, 0.008][latency_step];
        for kind in [
            SchedulerKind::Gurita,
            SchedulerKind::GuritaSpq,
            SchedulerKind::GuritaLocal,
        ] {
            let plain = run_once(kind, &jobs, &faults, latency, None);
            let registry = Arc::new(Registry::new());
            let mut sink = MetricsSink::new(
                &registry,
                MetricsConfig { ref_bandwidth: 1.25e9 },
            );
            let traced = run_with_metrics(kind, &jobs, &faults, latency, &mut sink);
            prop_assert_eq!(&plain, &traced, "metrics aggregation changed the result");
            let snap = registry.snapshot();
            let done = snap
                .family("gurita_jobs_completed_total")
                .expect("counter registered")
                .series[0]
                .value;
            prop_assert_eq!(done as usize, traced.jobs.len(), "registry missed completions");
            // JCT observations must cover every job across categories.
            let jct: u64 = snap
                .family("gurita_jct_seconds")
                .expect("histogram registered")
                .series
                .iter()
                .filter_map(|s| s.histogram.as_ref())
                .map(|h| h.count)
                .sum();
            prop_assert_eq!(jct as usize, traced.jobs.len(), "JCT histogram incomplete");
        }
    }
}

#[test]
fn trace_is_well_formed_and_staleness_matches_latency() {
    const LATENCY: f64 = 0.004;
    let jobs = workload(8, 7);
    let mut sink = MemorySink::new();
    // The decentralized plane: the one that defers tables through
    // ControlUpdate events, so deliveries (and staleness) are observable.
    let result = run_once(
        SchedulerKind::GuritaLocal,
        &jobs,
        &chaos_schedule(),
        LATENCY,
        Some(&mut sink),
    );

    // Lifecycle pairing: every flow/coflow/job that starts completes,
    // and the counts agree with the RunResult.
    let count = |f: &dyn Fn(&TraceRecord) -> bool| sink.records.iter().filter(|r| f(r)).count();
    let starts = count(&|r| matches!(r, TraceRecord::FlowStart { .. }));
    let completes = count(&|r| matches!(r, TraceRecord::FlowComplete { .. }));
    assert_eq!(starts, completes, "unbalanced flow start/complete");
    assert!(starts > 0);
    assert_eq!(
        count(&|r| matches!(r, TraceRecord::CoflowActivate { .. })),
        result.coflows.len()
    );
    assert_eq!(
        count(&|r| matches!(r, TraceRecord::CoflowComplete { .. })),
        result.coflows.len()
    );
    assert_eq!(
        count(&|r| matches!(r, TraceRecord::JobComplete { .. })),
        result.jobs.len()
    );
    assert!(
        count(&|r| matches!(r, TraceRecord::Epoch(_))) > 0,
        "no epoch samples"
    );
    assert!(
        count(&|r| matches!(r, TraceRecord::FaultApplied { .. })) > 0,
        "no fault records"
    );

    // Control deliveries carry the configured latency as staleness.
    let mut deliveries = 0;
    for r in &sink.records {
        if let TraceRecord::ControlDelivered { staleness, .. } = r {
            assert!(
                (staleness - LATENCY).abs() < 1e-9,
                "staleness {staleness} != latency {LATENCY}"
            );
            deliveries += 1;
        }
    }
    assert!(deliveries > 0, "nonzero latency produced no deliveries");

    // Records stream in simulation-time order, and epoch samples stay
    // within the run.
    let mut last = 0.0f64;
    for s in sink.samples() {
        assert!(s.t >= last - 1e-12, "epoch samples out of order");
        assert!(s.t <= result.makespan + 1e-9);
        last = s.t;
    }

    // Every record serializes to a single-key (externally tagged) JSON
    // object — the JSONL schema consumers parse.
    const TAGS: &[&str] = &[
        "FlowStart",
        "FlowPark",
        "FlowResume",
        "FlowComplete",
        "CoflowActivate",
        "CoflowComplete",
        "CoflowStarved",
        "JobComplete",
        "PriorityMove",
        "ControlDelivered",
        "FaultApplied",
        "Epoch",
    ];
    for r in &sink.records {
        let line = serde_json::to_string(r).unwrap();
        let v: serde::Value = serde_json::from_str(&line).unwrap();
        let serde::Value::Map(fields) = v else {
            panic!("record is not a JSON object: {line}");
        };
        assert_eq!(fields.len(), 1, "record is not externally tagged: {line}");
        assert!(
            TAGS.contains(&fields[0].0.as_str()),
            "unknown record tag: {line}"
        );
    }
}

#[test]
fn chrome_trace_export_is_loadable_json() {
    let path = std::env::temp_dir().join("gurita_telemetry_test.trace.json");
    let mut sink = ChromeTraceSink::new(&path);
    let scenario = Scenario::trace_driven(StructureKind::FbTao, 4, 42);
    let _ = scenario.run_traced(SchedulerKind::Gurita, &mut sink);
    let written = sink.finish().unwrap();
    let text = std::fs::read_to_string(&written).unwrap();
    std::fs::remove_file(&written).ok();
    let v: serde::Value = serde_json::from_str(&text).unwrap();
    let serde::Value::Map(top) = v else {
        panic!("trace is not a JSON object");
    };
    let (_, events) = top
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .expect("traceEvents field");
    let serde::Value::Seq(events) = events else {
        panic!("traceEvents is not an array");
    };
    assert!(!events.is_empty(), "empty Chrome trace");
}

/// The Drop safety net: a ChromeTraceSink that is dropped without an
/// explicit `flush()`/`finish()` still writes its trace, so daemon
/// shutdown paths (and unwinds) cannot silently lose a capture.
#[test]
fn chrome_trace_sink_flushes_on_drop() {
    let path = std::env::temp_dir().join(format!(
        "gurita_drop_flush-{}.trace.json",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    {
        let mut sink = ChromeTraceSink::new(&path);
        let scenario = Scenario::trace_driven(StructureKind::FbTao, 2, 7);
        let _ = scenario.run_traced(SchedulerKind::Gurita, &mut sink);
        // No flush()/finish(): dropping the sink must write the file.
    }
    let text = std::fs::read_to_string(&path).expect("drop wrote the trace");
    std::fs::remove_file(&path).ok();
    let v: serde::Value = serde_json::from_str(&text).expect("trace parses");
    let serde::Value::Map(top) = v else {
        panic!("trace is not a JSON object");
    };
    assert!(top.iter().any(|(k, _)| k == "traceEvents"));
}

/// Same net under a panic: the unwind drops the sink, the partial
/// trace survives on disk.
#[test]
fn chrome_trace_sink_survives_panic() {
    let path = std::env::temp_dir().join(format!(
        "gurita_panic_flush-{}.trace.json",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    let target = path.clone();
    let outcome = std::panic::catch_unwind(move || {
        let mut sink = ChromeTraceSink::new(&target);
        let scenario = Scenario::trace_driven(StructureKind::FbTao, 2, 7);
        let _ = scenario.run_traced(SchedulerKind::Gurita, &mut sink);
        panic!("operator-visible failure after a traced run");
    });
    assert!(outcome.is_err(), "the closure must panic");
    let text = std::fs::read_to_string(&path).expect("unwind flushed the trace");
    std::fs::remove_file(&path).ok();
    assert!(text.contains("traceEvents"), "partial trace lost on panic");
}

/// The paper's §V observation, now measurable: strict priority starves
/// low-priority coflows while WRR's guaranteed shares do not — on the
/// same workload with the same thresholds.
#[test]
fn spq_starves_where_wrr_does_not() {
    let scenario = Scenario::trace_driven(StructureKind::FbTao, 4, 42);
    let spq = scenario.run(SchedulerKind::GuritaSpq);
    let wrr = scenario.run(SchedulerKind::Gurita);
    assert!(
        spq.total_starvation() > 0.0,
        "SPQ showed no starvation on the contended trace"
    );
    assert!(spq.max_starvation() > 0.0);
    assert_eq!(wrr.total_starvation(), 0.0, "WRR starved a coflow");
    // Per-coflow invariants: the longest interval never exceeds the
    // total, and a coflow cannot starve longer than it was active.
    for c in &spq.coflows {
        assert!(c.starved_max <= c.starved_total + 1e-12);
        assert!(c.starved_total <= c.cct() + 1e-9, "starved beyond lifetime");
    }
}
