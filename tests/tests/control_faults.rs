//! Control-plane fault-tolerance integration tests: the zero-fault
//! bit-for-bit identity, deterministic replay under chaos, graceful
//! degradation, up-front profile validation, and the telemetry
//! surfacing of fault events.

use gurita_experiments::roster::SchedulerKind;
use gurita_experiments::scenario::Scenario;
use gurita_model::HostId;
use gurita_sim::faults::{AgentCrash, ControlFaults, FaultSchedule, PartitionWindow};
use gurita_sim::runtime::{SimConfig, Simulation};
use gurita_sim::telemetry::{MemorySink, TraceRecord};
use gurita_sim::topology::FatTree;
use gurita_sim::SimError;
use gurita_workload::dags::StructureKind;

fn scenario(structure: StructureKind, jobs: usize, seed: u64) -> Scenario {
    let mut s = Scenario::trace_driven(structure, jobs, seed);
    // Light tail so the suite runs quickly; mice/elephant contrast is
    // preserved.
    s.workload.category_weights = [0.40, 0.25, 0.15, 0.08, 0.12, 0.0, 0.0];
    s
}

/// A deliberately nasty — but valid — profile: lossy channel, one agent
/// crash that later recovers, and a coordinator partition window.
fn chaos_profile(seed: u64) -> ControlFaults {
    ControlFaults {
        drop_prob: 0.25,
        duplicate_prob: 0.10,
        reorder_prob: 0.10,
        reorder_delay: 2e-3,
        seed,
        staleness_bound: 0.1,
        crashes: vec![AgentCrash {
            host: HostId(3),
            at: 0.05,
            restart_after: Some(0.1),
        }],
        partitions: vec![PartitionWindow {
            start: 0.2,
            duration: 0.05,
        }],
        ..ControlFaults::default()
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

    /// The acceptance identity, as a property over workloads: arming a
    /// zero-fault (null) control-fault profile must leave both ported
    /// decentralized schemes bit-for-bit identical to the unarmed plane
    /// at every control latency — the fault machinery may not perturb a
    /// fault-free run.
    #[test]
    fn zero_fault_armed_is_bit_for_bit_identical(
        seed in 0u64..1000,
        jobs in 6usize..12,
        latency_idx in 0usize..3,
        aalo: bool,
    ) {
        let latency = [0.0f64, 1e-3, 10e-3][latency_idx];
        let kind = if aalo {
            SchedulerKind::AaloLocal
        } else {
            SchedulerKind::GuritaLocal
        };
        let mut plain = scenario(StructureKind::FbTao, jobs, seed);
        plain.control_latency = latency;
        let mut armed = plain.clone();
        armed.control_faults = Some(ControlFaults::default());
        let a = plain.run(kind);
        let b = armed.run(kind);
        proptest::prop_assert_eq!(
            &a,
            &b,
            "{:?} diverged under a null fault profile at latency {}",
            kind,
            latency
        );
    }
}

#[test]
fn fault_armed_replay_is_deterministic() {
    let mut s = scenario(StructureKind::FbTao, 20, 9);
    s.control_latency = 1e-3;
    s.control_faults = Some(chaos_profile(17));
    let a = s.run(SchedulerKind::GuritaLocal);
    let b = s.run(SchedulerKind::GuritaLocal);
    assert_eq!(a, b, "same seed and profile must replay bit-for-bit");
    assert!(
        a.control.messages_sent > 0,
        "the lossy channel was exercised"
    );
}

#[test]
fn chaos_completes_every_job_with_bounded_slowdown_and_counters() {
    let mut fresh = scenario(StructureKind::FbTao, 20, 3);
    fresh.control_latency = 1e-3;
    let mut chaotic = fresh.clone();
    chaotic.control_faults = Some(chaos_profile(5));
    let f = fresh.run(SchedulerKind::GuritaLocal);
    let c = chaotic.run(SchedulerKind::GuritaLocal);
    assert_eq!(c.jobs.len(), f.jobs.len(), "faults must not lose jobs");
    // The fault-free run carries zero resilience accounting; the
    // chaotic one must show its scars.
    assert_eq!(f.control, Default::default());
    assert!(c.control.messages_sent > 0);
    assert!(
        c.control.messages_dropped > 0,
        "25% drop must hit something"
    );
    assert_eq!(c.control.agent_crashes, 1);
    assert_eq!(c.control.agent_restarts, 1);
    assert_eq!(c.control.partitions, 1);
    // Graceful degradation, not collapse: chaos may cost, but the run
    // stays within an order of magnitude of the healthy one.
    assert!(
        c.avg_jct() <= f.avg_jct() * 10.0,
        "chaos slowdown unbounded: {} vs {}",
        c.avg_jct(),
        f.avg_jct()
    );
    assert!(
        c.avg_jct() >= f.avg_jct() * 0.5,
        "chaos should not implausibly beat the healthy run: {} vs {}",
        c.avg_jct(),
        f.avg_jct()
    );
}

fn rejected(faults: ControlFaults) -> bool {
    let fabric = FatTree::new(4).expect("valid pod count");
    let mut sim = Simulation::new(
        fabric,
        SimConfig {
            control_faults: Some(faults),
            ..SimConfig::default()
        },
    );
    let mut plane = SchedulerKind::GuritaLocal.build_plane();
    matches!(
        sim.try_run_control_with_faults(Vec::new(), plane.as_mut(), &FaultSchedule::new()),
        Err(SimError::InvalidFault { .. })
    )
}

#[test]
fn invalid_control_fault_profiles_are_rejected_up_front() {
    assert!(rejected(ControlFaults {
        drop_prob: 1.5,
        ..ControlFaults::default()
    }));
    assert!(rejected(ControlFaults {
        backoff_factor: 0.5,
        ..ControlFaults::default()
    }));
    assert!(rejected(ControlFaults {
        crashes: vec![AgentCrash {
            host: HostId(1_000_000),
            at: 0.0,
            restart_after: None,
        }],
        ..ControlFaults::default()
    }));
    assert!(rejected(ControlFaults {
        partitions: vec![PartitionWindow {
            start: 0.0,
            duration: 0.0,
        }],
        ..ControlFaults::default()
    }));
}

#[test]
fn traced_chaos_surfaces_fault_records_without_perturbing_results() {
    let mut s = scenario(StructureKind::FbTao, 15, 7);
    s.control_latency = 1e-3;
    s.control_faults = Some(chaos_profile(11));
    let untraced = s.run(SchedulerKind::GuritaLocal);
    let mut sink = MemorySink::new();
    let traced = s.run_traced(SchedulerKind::GuritaLocal, &mut sink);
    assert_eq!(untraced, traced, "telemetry must never perturb scheduling");
    let has = |pred: &dyn Fn(&TraceRecord) -> bool| sink.records.iter().any(pred);
    assert!(
        has(&|r| matches!(r, TraceRecord::ControlApplied { .. })),
        "tables that survive the channel must be recorded as applied"
    );
    assert!(
        has(&|r| matches!(r, TraceRecord::ControlDropped { .. })),
        "dropped transmissions must be recorded"
    );
    assert!(
        has(&|r| matches!(r, TraceRecord::AgentCrashed { .. }))
            && has(&|r| matches!(r, TraceRecord::AgentRestarted { .. })),
        "the scheduled crash/restart must be recorded"
    );
    assert!(
        has(&|r| matches!(r, TraceRecord::Partition { .. })),
        "partition windows must be recorded"
    );
}
